package cc

import (
	"math/rand"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/kir"
)

func TestCompileFibBothPlatforms(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("fib", 1, true)
	n := fb.Param(0)
	fb.Block("entry")
	a := fb.Var()
	b := fb.Var()
	i := fb.Var()
	fb.ConstTo(a, 0)
	fb.ConstTo(b, 1)
	fb.ConstTo(i, 0)
	fb.Jmp("loop")
	fb.Block("loop")
	c := fb.Cmp(kir.Lt, i, n)
	fb.Br(c, "body", "done")
	fb.Block("body")
	tmp := fb.Add(a, b)
	fb.MovTo(a, b)
	fb.MovTo(b, tmp)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("loop")
	fb.Block("done")
	fb.Ret(a)

	checkAgainstInterp(t, pb.Program(), "fib",
		[][]uint32{{0}, {1}, {2}, {3}, {10}, {20}, {30}})
}

func TestCompileRecursionAndCalls(t *testing.T) {
	pb := kir.NewProgram()
	fact := pb.Func("fact", 1, true)
	n := fact.Param(0)
	fact.Block("entry")
	c := fact.CmpI(kir.Le, n, 1)
	fact.Br(c, "base", "rec")
	fact.Block("base")
	fact.RetI(1)
	fact.Block("rec")
	sub := fact.Call("fact", fact.SubI(n, 1))
	fact.Ret(fact.Bin(kir.Mul, n, sub))

	// A wrapper with live values across the call (exercises callee-saved
	// allocation on CISC and register survival on RISC).
	wrap := pb.Func("wrap", 2, true)
	wrap.Block("entry")
	x := wrap.MulI(wrap.Param(1), 3)
	f := wrap.Call("fact", wrap.Param(0))
	wrap.Ret(wrap.Add(f, x))

	checkAgainstInterp(t, pb.Program(), "wrap",
		[][]uint32{{1, 0}, {5, 7}, {6, 100}, {10, 1}})
}

func TestCompileStructsMixedWidths(t *testing.T) {
	pb := kir.NewProgram()
	s := pb.Struct("rec", kir.F8("flag"), kir.F16("count"), kir.F32("total"), kir.F8("tag"))
	pb.GlobalStruct("recs", s, 8)

	// setrec(i, flag, count, total)
	set := pb.Func("setrec", 4, false)
	set.Block("entry")
	base := set.GlobalAddr("recs", 0)
	p := set.Index(s, base, set.Param(0))
	set.StoreField(s, "flag", p, set.Param(1))
	set.StoreField(s, "count", p, set.Param(2))
	set.StoreField(s, "total", p, set.Param(3))
	set.StoreField(s, "tag", p, set.AddI(set.Param(0), 0x41))
	set.Ret(0)

	// sumrec() = Σ flag*1000000 + count*1000 + total + tag
	sum := pb.Func("sumrec", 0, true)
	sum.Block("entry")
	b2 := sum.GlobalAddr("recs", 0)
	acc := sum.Var()
	i := sum.Var()
	sum.ConstTo(acc, 0)
	sum.ConstTo(i, 0)
	sum.Jmp("loop")
	sum.Block("loop")
	cc := sum.CmpI(kir.Lt, i, 8)
	sum.Br(cc, "body", "done")
	sum.Block("body")
	p2 := sum.Index(s, b2, i)
	fl := sum.LoadField(s, "flag", p2)
	cn := sum.LoadField(s, "count", p2)
	to := sum.LoadField(s, "total", p2)
	tg := sum.LoadField(s, "tag", p2)
	sum.BinTo(acc, kir.Add, acc, sum.MulI(fl, 1000000))
	sum.BinTo(acc, kir.Add, acc, sum.MulI(cn, 1000))
	sum.BinTo(acc, kir.Add, acc, to)
	sum.BinTo(acc, kir.Add, acc, tg)
	sum.BinImmTo(i, kir.Add, i, 1)
	sum.Jmp("loop")
	sum.Block("done")
	sum.Ret(acc)

	prog := pb.Program()
	images := compileBoth(t, prog)
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		ip, err := kir.NewInterp(prog, kir.NewLayout(plat))
		if err != nil {
			t.Fatal(err)
		}
		g := loadGuest(t, images[plat])
		for i := uint32(0); i < 8; i++ {
			args := []uint32{i, i & 1, 100 + i, 100000 * i}
			if _, err := ip.Call("setrec", args...); err != nil {
				t.Fatal(err)
			}
			if _, err := g.call(t, "setrec", args...); err != nil {
				t.Fatalf("[%v] setrec: %v", plat, err)
			}
		}
		want, err := ip.Call("sumrec")
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.call(t, "sumrec")
		if err != nil {
			t.Fatalf("[%v] sumrec: %v", plat, err)
		}
		if got != want {
			t.Errorf("[%v] sumrec = %d, want %d", plat, got, want)
		}
	}
}

func TestCompileLocalArraysAndRawAccess(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("revsum", 1, true)
	fb.Local("buf", kir.W8, 32)
	seed := fb.Param(0)
	fb.Block("entry")
	buf := fb.LocalAddr("buf", 0)
	i := fb.Var()
	fb.ConstTo(i, 0)
	fb.Jmp("fill")
	fb.Block("fill")
	c := fb.CmpI(kir.Lt, i, 32)
	fb.Br(c, "fbody", "scan")
	fb.Block("fbody")
	v := fb.Bin(kir.Xor, seed, fb.MulI(i, 7))
	fb.Store(kir.W8, fb.Add(buf, i), 0, v)
	fb.BinImmTo(i, kir.Add, i, 1)
	fb.Jmp("fill")
	fb.Block("scan")
	acc := fb.Var()
	fb.ConstTo(acc, 0)
	fb.ConstTo(i, 31)
	fb.Jmp("sloop")
	fb.Block("sloop")
	c2 := fb.CmpI(kir.Ge, i, 0)
	fb.Br(c2, "sbody", "done")
	fb.Block("sbody")
	lv := fb.Load(kir.W8, fb.Add(buf, i), 0)
	fb.BinTo(acc, kir.Add, acc, fb.MulI(lv, 3))
	fb.BinImmTo(i, kir.Sub, i, 1)
	fb.Jmp("sloop")
	fb.Block("done")
	fb.Ret(acc)

	checkAgainstInterp(t, pb.Program(), "revsum",
		[][]uint32{{0}, {1}, {0xAB}, {0xFFFFFFFF}, {12345}})
}

func TestCompileFunctionPointers(t *testing.T) {
	pb := kir.NewProgram()
	pb.GlobalBytes("table", 16, nil)
	for i, name := range []string{"op0", "op1", "op2", "op3"} {
		f := pb.Func(name, 1, true)
		f.Block("entry")
		switch i {
		case 0:
			f.Ret(f.AddI(f.Param(0), 10))
		case 1:
			f.Ret(f.MulI(f.Param(0), 5))
		case 2:
			f.Ret(f.BinImm(kir.Xor, f.Param(0), 0x55))
		default:
			f.Ret(f.BinImm(kir.Shl, f.Param(0), 3))
		}
	}
	st := pb.Func("setup", 0, false)
	st.Block("entry")
	tb := st.GlobalAddr("table", 0)
	for i, name := range []string{"op0", "op1", "op2", "op3"} {
		st.Store(kir.W32, tb, int32(4*i), st.FuncAddr(name))
	}
	st.Ret(0)

	d := pb.Func("dispatch", 2, true)
	d.Block("entry")
	tb2 := d.GlobalAddr("table", 0)
	slot := d.MulI(d.AndI(d.Param(0), 3), 4)
	fp := d.Load(kir.W32, d.Add(tb2, slot), 0)
	d.Ret(d.CallPtr(fp, true, d.Param(1)))

	p := pb.Program()
	images := compileBoth(t, p)
	for _, plat := range []isa.Platform{isa.CISC, isa.RISC} {
		g := loadGuest(t, images[plat])
		if _, err := g.call(t, "setup"); err != nil {
			t.Fatalf("[%v] setup: %v", plat, err)
		}
		wants := []uint32{31, 105, 21 ^ 0x55, 21 << 3}
		for i, want := range wants {
			got, err := g.call(t, "dispatch", uint32(i), 21)
			if err != nil {
				t.Fatalf("[%v] dispatch(%d): %v", plat, i, err)
			}
			if got != want {
				t.Errorf("[%v] dispatch(%d,21) = %d, want %d", plat, i, got, want)
			}
		}
	}
}

func TestCompileHighRegisterPressure(t *testing.T) {
	// Twelve simultaneously live values force spills on the 4-register CISC
	// target while fitting in RISC registers; both must agree with the
	// interpreter.
	pb := kir.NewProgram()
	fb := pb.Func("pressure", 2, true)
	fb.Block("entry")
	var vals []kir.Reg
	for i := 0; i < 12; i++ {
		v := fb.Add(fb.MulI(fb.Param(0), int32(i+1)), fb.MulI(fb.Param(1), int32(13-i)))
		vals = append(vals, v)
	}
	acc := vals[0]
	for i := 1; i < 12; i++ {
		acc = fb.Bin(kir.Xor, acc, fb.MulI(vals[i], int32(i)))
	}
	fb.Ret(acc)

	checkAgainstInterp(t, pb.Program(), "pressure",
		[][]uint32{{0, 0}, {1, 2}, {1000, 77}, {0xDEADBEEF, 0x1234}})
}

// TestDifferentialRandomPrograms generates random straight-line arithmetic
// programs and checks interpreter/CISC/RISC agreement — the cross-backend
// oracle property.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nProgs := 30
	if testing.Short() {
		nProgs = 8
	}
	for pi := 0; pi < nProgs; pi++ {
		pb := kir.NewProgram()
		fb := pb.Func("f", 2, true)
		fb.Block("entry")
		regs := []kir.Reg{fb.Param(0), fb.Param(1)}
		ops := []kir.BinOp{kir.Add, kir.Sub, kir.Mul, kir.And, kir.Or, kir.Xor}
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				regs = append(regs, fb.Const(rng.Int31()-1<<30))
			case 1:
				a := regs[rng.Intn(len(regs))]
				regs = append(regs, fb.BinImm(ops[rng.Intn(len(ops))], a, rng.Int31n(1000)-500))
			case 2:
				a := regs[rng.Intn(len(regs))]
				b := regs[rng.Intn(len(regs))]
				regs = append(regs, fb.Bin(ops[rng.Intn(len(ops))], a, b))
			default:
				a := regs[rng.Intn(len(regs))]
				sh := rng.Int31n(31)
				op := []kir.BinOp{kir.Shl, kir.Shr, kir.Sar}[rng.Intn(3)]
				regs = append(regs, fb.BinImm(op, a, sh))
			}
		}
		// Fold everything so all values are live to the end.
		acc := regs[0]
		for _, r := range regs[1:] {
			acc = fb.Bin(kir.Add, acc, r)
		}
		fb.Ret(acc)

		args := [][]uint32{
			{0, 0},
			{rng.Uint32(), rng.Uint32()},
			{rng.Uint32(), rng.Uint32()},
		}
		checkAgainstInterp(t, pb.Program(), "f", args)
	}
}

func TestCompileDivRem(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("divrem", 2, true)
	fb.Block("entry")
	q := fb.Bin(kir.Div, fb.Param(0), fb.Param(1))
	r := fb.Bin(kir.Rem, fb.Param(0), fb.Param(1))
	fb.Ret(fb.Add(fb.MulI(q, 1000), r))

	checkAgainstInterp(t, pb.Program(), "divrem",
		[][]uint32{{100, 7}, {5, 100}, {0xFFFFFF9C /* -100 */, 7}, {99, 3}})
}

func TestCompileSignedLoads(t *testing.T) {
	pb := kir.NewProgram()
	pb.GlobalBytes("raw", 16, []byte{0x80, 0xFF, 0x7F, 0x01, 0x00, 0x80, 0xFF, 0xFF})
	fb := pb.Func("sx", 1, true)
	fb.Block("entry")
	base := fb.GlobalAddr("raw", 0)
	b := fb.LoadS(kir.W8, fb.Add(base, fb.Param(0)), 0)
	fb.Ret(b)
	checkAgainstInterp(t, pb.Program(), "sx",
		[][]uint32{{0}, {1}, {2}, {3}})
}

func TestImageFuncRanges(t *testing.T) {
	pb := kir.NewProgram()
	for _, name := range []string{"alpha", "beta", "gamma"} {
		f := pb.Func(name, 0, true)
		f.Block("entry")
		f.RetI(1)
	}
	im, err := Compile(pb.Program(), isa.CISC, testBases)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Funcs) != 3 {
		t.Fatalf("func ranges = %d, want 3", len(im.Funcs))
	}
	for _, fr := range im.Funcs {
		if fr.End <= fr.Start {
			t.Errorf("func %s empty range", fr.Name)
		}
		mid := (fr.Start + fr.End) / 2
		got, ok := im.FuncAt(mid)
		if !ok || got.Name != fr.Name {
			t.Errorf("FuncAt(0x%x) = %v %v, want %s", mid, got, ok, fr.Name)
		}
	}
	if _, ok := im.FuncAt(0); ok {
		t.Error("FuncAt(0) found a function")
	}
}

func TestImageDataEncodingEndianness(t *testing.T) {
	pb := kir.NewProgram()
	s := pb.Struct("v", kir.F32("x"))
	pb.GlobalStruct("g", s, 1, 0x11223344)
	ciscIm, err := Compile(pb.Program(), isa.CISC, testBases)
	if err != nil {
		t.Fatal(err)
	}
	riscIm, err := Compile(pb.Program(), isa.RISC, testBases)
	if err != nil {
		t.Fatal(err)
	}
	if ciscIm.Data[0] != 0x44 {
		t.Errorf("CISC data[0] = 0x%x, want little-endian 0x44", ciscIm.Data[0])
	}
	if riscIm.Data[0] != 0x11 {
		t.Errorf("RISC data[0] = 0x%x, want big-endian 0x11", riscIm.Data[0])
	}
}

func TestBSSPlacement(t *testing.T) {
	pb := kir.NewProgram()
	pb.GlobalBytes("initialized", 32, []byte{1, 2, 3})
	pb.GlobalBSS("zeroed", 128)
	im, err := Compile(pb.Program(), isa.CISC, testBases)
	if err != nil {
		t.Fatal(err)
	}
	if im.Sym("initialized") != testBases.Data {
		t.Errorf("initialized at 0x%x", im.Sym("initialized"))
	}
	if im.Sym("zeroed") != testBases.BSS {
		t.Errorf("zeroed at 0x%x", im.Sym("zeroed"))
	}
	if im.BSSSize < 128 {
		t.Errorf("BSS size = %d", im.BSSSize)
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	pb := kir.NewProgram()
	fb := pb.Func("f", 0, false)
	fb.Block("entry")
	fb.Const(1) // unterminated
	if _, err := Compile(pb.Program(), isa.CISC, testBases); err == nil {
		t.Error("Compile accepted an invalid program")
	}
}

func TestHeapSectionPlacement(t *testing.T) {
	pb := kir.NewProgram()
	pb.GlobalBytes("meta", 32, []byte{1})
	pb.GlobalBSS("zeroed", 64)
	pb.GlobalHeap("payload", 128)
	im, err := Compile(pb.Program(), isa.CISC, Bases{Code: 0x1000, Data: 0x2000, BSS: 0x3000, Heap: 0x4000})
	if err != nil {
		t.Fatal(err)
	}
	if im.Sym("payload") != 0x4000 {
		t.Errorf("heap global at 0x%x, want 0x4000", im.Sym("payload"))
	}
	if im.HeapSize < 128 {
		t.Errorf("heap size = %d", im.HeapSize)
	}
	// Heap globals must not consume data or bss space.
	if im.Sym("zeroed") != 0x3000 {
		t.Errorf("bss global at 0x%x", im.Sym("zeroed"))
	}
	// Default heap base when unspecified.
	im2, err := Compile(pb.Program(), isa.RISC, Bases{Code: 0x1000, Data: 0x2000, BSS: 0x3000})
	if err != nil {
		t.Fatal(err)
	}
	if im2.HeapBase != 0x3000+0x20000 {
		t.Errorf("default heap base = 0x%x", im2.HeapBase)
	}
}
