package crashnet

import (
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"kfi/internal/isa"
)

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.ECONNREFUSED, true},
		{syscall.ENOBUFS, true},
		{syscall.EAGAIN, true},
		{syscall.EINTR, true},
		{&net.OpError{Op: "write", Err: syscall.ECONNREFUSED}, true},
		{net.ErrClosed, false},
		{syscall.EBADF, false},
		{errors.New("something else"), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// flakyWrite scripts a write stub: the first len(errs) calls return those
// errors in order, every later call succeeds.
func flakyWrite(calls *int, errs ...error) func([]byte) (int, error) {
	return func(b []byte) (int, error) {
		i := *calls
		*calls++
		if i < len(errs) && errs[i] != nil {
			return 0, errs[i]
		}
		return len(b), nil
	}
}

func TestSendRetriesTransientErrors(t *testing.T) {
	var calls int
	var slept []time.Duration
	s := &UDPSender{
		write: flakyWrite(&calls, syscall.ECONNREFUSED, syscall.ENOBUFS),
		sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if err := s.Send(Packet{Seq: 1, Platform: isa.CISC}); err != nil {
		t.Fatalf("send failed despite retry budget: %v", err)
	}
	if calls != 3 {
		t.Fatalf("write called %d times, want 3", calls)
	}
	// Exponential backoff: base, then 2*base.
	want := []time.Duration{defaultRetryBase, 2 * defaultRetryBase}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestSendPermanentErrorNotRetried(t *testing.T) {
	var calls int
	s := &UDPSender{
		write: flakyWrite(&calls, net.ErrClosed),
		sleep: func(time.Duration) { t.Fatal("slept before a permanent error") },
	}
	err := s.Send(Packet{Seq: 2})
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want wrapped net.ErrClosed", err)
	}
	if calls != 1 {
		t.Fatalf("write called %d times for a permanent error, want 1", calls)
	}
}

func TestSendRetryBudgetExhausted(t *testing.T) {
	var calls int
	var slept int
	s := &UDPSender{
		MaxRetries: 2,
		RetryBase:  time.Microsecond,
		write: func(b []byte) (int, error) {
			calls++
			return 0, syscall.ECONNREFUSED
		},
		sleep: func(time.Duration) { slept++ },
	}
	err := s.Send(Packet{Seq: 3})
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want wrapped ECONNREFUSED", err)
	}
	if calls != 3 || slept != 2 {
		t.Fatalf("calls = %d (want 3), sleeps = %d (want 2)", calls, slept)
	}
}

// TestRecvDrainsPastGarbage is the regression test for the drain-ending bug:
// a malformed datagram sitting in front of a valid packet used to end the
// drain and strand the packet. Recv must skip the noise and deliver it.
func TestRecvDrainsPastGarbage(t *testing.T) {
	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	raw, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	snd, err := NewUDPSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	// Garbage first, then the real packet: UDP on loopback preserves order.
	if _, err := raw.Write([]byte{0xBA, 0xD0}); err != nil {
		t.Fatal(err)
	}
	want := Packet{Seq: 41, Platform: isa.RISC, Cause: isa.CauseAlignment, Cycles: 777}
	if err := snd.Send(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, ok := col.Recv(); ok {
			if got != want {
				t.Fatalf("drained %+v, want %+v", got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("valid packet behind garbage never delivered")
		}
	}
}

// TestRecvHardErrorEndsDrain: a closed socket must end the drain rather
// than spin.
func TestRecvHardErrorEndsDrain(t *testing.T) {
	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.Close()
	done := make(chan bool, 1)
	go func() {
		_, ok := col.Recv()
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed socket produced a packet")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv on closed socket did not return")
	}
}

func TestUnmarshalErrorIsMalformed(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short-packet err = %v, want ErrMalformed", err)
	}
}
