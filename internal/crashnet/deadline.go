package crashnet

import "time"

// DrainTimeout bounds how long UDPCollector.Recv waits for an
// already-buffered datagram. It must be slightly in the future: Go fails
// reads outright once a deadline has already expired, even when datagrams are
// sitting in the socket buffer, so a zero (exactly-now) deadline would make
// buffered packets undeliverable. Raise it on congested or virtualized hosts
// where loopback delivery can lag; campaigns poll Recv, so the value is a
// per-poll bound, not added latency.
var DrainTimeout = 5 * time.Millisecond

// drainDeadline returns the near-immediate deadline for one Recv poll.
func drainDeadline() time.Time { return time.Now().Add(DrainTimeout) }

// noDeadline clears the read deadline.
func noDeadline() time.Time { return time.Time{} }
