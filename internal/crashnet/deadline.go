package crashnet

import "time"

// drainDeadline returns a near-immediate deadline for Recv. It must lie
// slightly in the future: Go fails reads outright once a deadline has
// already expired, even when datagrams are sitting in the socket buffer, so
// an exactly-now deadline would make buffered packets undeliverable.
func drainDeadline() time.Time { return time.Now().Add(5 * time.Millisecond) }

// noDeadline clears the read deadline.
func noDeadline() time.Time { return time.Time{} }
