package crashnet

import (
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"kfi/internal/isa"
)

func samplePacket() Packet {
	return Packet{
		Seq:       7,
		Platform:  isa.RISC,
		Cause:     isa.CauseBadArea,
		PC:        0xC008D7A8,
		FaultAddr: 0x4D,
		SP:        0x00171F40,
		Cycles:    1592,
		FramePtrs: [8]uint32{0xC0119CB2, 0xC0107784, 0xC010799A, 0xC0108067, 1, 2, 3, 4},
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestUnmarshalShortPacket(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short packet accepted")
	}
}

// Property: Marshal/Unmarshal is the identity for arbitrary packets.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seq, pc, fa, sp uint32, cycles uint64, fps [8]uint32) bool {
		p := Packet{Seq: seq, Platform: isa.CISC, Cause: isa.CauseBadPaging,
			PC: pc, FaultAddr: fa, SP: sp, Cycles: cycles, FramePtrs: fps}
		got, err := Unmarshal(p.Marshal())
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelTransport(t *testing.T) {
	ch := NewChannel()
	if _, ok := ch.Recv(); ok {
		t.Error("empty channel returned a packet")
	}
	p1, p2 := samplePacket(), samplePacket()
	p2.Seq = 8
	if err := ch.Send(p1); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(p2); err != nil {
		t.Fatal(err)
	}
	got1, ok := ch.Recv()
	if !ok || got1.Seq != 7 {
		t.Errorf("first recv = %+v %v", got1, ok)
	}
	got2, ok := ch.Recv()
	if !ok || got2.Seq != 8 {
		t.Errorf("second recv = %+v %v", got2, ok)
	}
	if _, ok := ch.Recv(); ok {
		t.Error("drained channel returned a packet")
	}
}

func TestChannelClosed(t *testing.T) {
	ch := NewChannel()
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(samplePacket()); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed channel: %v, want ErrClosed", err)
	}
}

func TestUDPTransport(t *testing.T) {
	col, err := NewUDPCollector("")
	if err != nil {
		t.Skipf("no loopback UDP available: %v", err)
	}
	defer col.Close()

	snd, err := NewUDPSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	p := samplePacket()
	if err := snd.Send(p); err != nil {
		t.Fatal(err)
	}
	got, err := col.RecvWait()
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("UDP round trip: got %+v, want %+v", got, p)
	}
	// Non-blocking receive on an empty socket reports nothing.
	if _, ok := col.Recv(); ok {
		t.Error("empty socket returned a packet")
	}
}

func TestUDPCollectorDrainAndErrors(t *testing.T) {
	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	snd, err := NewUDPSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	// Drain of an empty socket: no packet, no block.
	if _, ok := col.Recv(); ok {
		t.Error("empty drain returned a packet")
	}
	// Buffered packets must be drained by Recv (regression: an expired
	// read deadline made buffered datagrams undeliverable).
	want := Packet{Seq: 9, Platform: isa.RISC, Cause: isa.CauseAlignment, Cycles: 12345}
	if err := snd.Send(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var got Packet
	ok := false
	for time.Now().Before(deadline) {
		if got, ok = col.Recv(); ok {
			break
		}
	}
	if !ok || got.Seq != 9 || got.Cause != isa.CauseAlignment || got.Cycles != 12345 {
		t.Fatalf("drained %+v ok=%v", got, ok)
	}
	// A malformed datagram is dropped, not returned.
	raw, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, ok := col.Recv(); ok {
			t.Fatal("malformed datagram surfaced as a packet")
		}
	}
}

func TestUDPAddressErrors(t *testing.T) {
	if _, err := NewUDPCollector("not-an-addr"); err == nil {
		t.Error("bad collector address accepted")
	}
	if _, err := NewUDPSender("not-an-addr"); err == nil {
		t.Error("bad sender address accepted")
	}
	// RecvWait on a closed socket errors instead of hanging.
	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.Close()
	if _, err := col.RecvWait(); err == nil {
		t.Error("RecvWait on closed socket returned nil error")
	}
}

// TestDrainAfterSenderFinished is the regression test for the DrainTimeout
// tunable: packets a finished (closed) sender left in the socket buffer must
// still be delivered by the drain path, because drainDeadline lies slightly
// in the future rather than exactly at now.
func TestDrainAfterSenderFinished(t *testing.T) {
	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	const n = 5
	snd, err := NewUDPSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := samplePacket()
		p.Seq = uint32(100 + i)
		if err := snd.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	// The sender is completely done before the collector drains anything.
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}

	seen := map[uint32]bool{}
	deadline := time.Now().Add(2 * time.Second)
	for len(seen) < n && time.Now().Before(deadline) {
		if p, ok := col.Recv(); ok {
			seen[p.Seq] = true
		}
	}
	for i := 0; i < n; i++ {
		if !seen[uint32(100+i)] {
			t.Errorf("packet seq %d buffered before drain was never delivered", 100+i)
		}
	}
}

// TestDrainTimeoutTunable checks that Recv honors the exported knob: with a
// generous DrainTimeout a packet that arrives shortly after the poll begins
// is still caught by that same poll.
func TestDrainTimeoutTunable(t *testing.T) {
	old := DrainTimeout
	defer func() { DrainTimeout = old }()
	DrainTimeout = 500 * time.Millisecond

	col, err := NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	snd, err := NewUDPSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	go func() {
		time.Sleep(50 * time.Millisecond)
		snd.Send(samplePacket())
	}()
	start := time.Now()
	p, ok := col.Recv()
	if !ok {
		t.Fatalf("packet sent 50ms into a 500ms drain window was not received (waited %v)", time.Since(start))
	}
	if p.Seq != samplePacket().Seq {
		t.Errorf("got seq %d", p.Seq)
	}
}

// TestRecvErrTypedTimeout pins the drain contract: an empty socket yields
// ErrDrainTimeout (a typed "drain done", never ErrMalformed), a buffered
// packet yields nil, garbage on the port is skipped rather than surfaced,
// and a closed socket yields a hard error distinct from both sentinels.
func TestRecvErrTypedTimeout(t *testing.T) {
	coll, err := NewUDPCollector("")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	// Empty socket: the deadline expiry is typed, not conflated with noise.
	if _, err := coll.RecvErr(); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("empty drain err = %v, want ErrDrainTimeout", err)
	}
	if errors.Is(ErrDrainTimeout, ErrMalformed) {
		t.Fatal("ErrDrainTimeout must be distinct from ErrMalformed")
	}

	sender, err := NewUDPSender(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Garbage before a valid packet: the drain skips it and still delivers
	// the packet; ErrMalformed never escapes RecvErr.
	if _, err := sender.conn.Write([]byte("noise")); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(samplePacket()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		p, err := coll.RecvErr()
		if err == nil {
			if p.Seq != samplePacket().Seq {
				t.Fatalf("drained packet %+v, want seq %d", p, samplePacket().Seq)
			}
			break
		}
		if !errors.Is(err, ErrDrainTimeout) {
			t.Fatalf("drain err = %v, want nil or ErrDrainTimeout while packet in flight", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("packet never delivered through RecvErr")
		}
	}

	// Closed socket: a hard error, not the timeout sentinel.
	coll.Close()
	if _, err := coll.RecvErr(); err == nil || errors.Is(err, ErrDrainTimeout) || errors.Is(err, ErrMalformed) {
		t.Fatalf("closed-socket err = %v, want a hard socket error", err)
	}
}
