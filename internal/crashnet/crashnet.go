// Package crashnet implements the remote crash-data collection path from the
// paper's NFTAPE extension: when the kernel crashes, the embedded crash
// handler cannot trust the local filesystem, so it packages the failure data
// (crash cause, cycles-to-crash, frame pointers before and after injection)
// as a UDP-like packet and hands it directly to the network device, which
// delivers it to a remote collector on the control host.
//
// Two transports are provided: an in-process channel (the default used by
// campaigns) and a real UDP transport over the loopback interface, matching
// the paper's deployment.
package crashnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"kfi/internal/isa"
)

// Transient reports whether a transport error is worth retrying: deadline
// expiries and the momentary kernel-side conditions (receiver not yet bound,
// socket buffers full, interrupted syscall). Anything else — a closed socket,
// an unreachable network — is permanent for this process.
func Transient(err error) bool { return transient(err) }

func transient(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR)
}

// Packet is one crash report. The wire encoding is a fixed-size big-endian
// record (a "UDP-like packet" in the paper's words).
type Packet struct {
	Seq       uint32
	Platform  isa.Platform
	Cause     isa.CrashCause
	PC        uint32
	FaultAddr uint32
	SP        uint32
	Cycles    uint64 // cycles-to-crash measured by the performance counter
	FramePtrs [8]uint32
}

const packetSize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8*4

// Marshal encodes the packet.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, packetSize)
	be := binary.BigEndian
	be.PutUint32(buf[0:], p.Seq)
	be.PutUint32(buf[4:], uint32(p.Platform))
	be.PutUint32(buf[8:], uint32(p.Cause))
	be.PutUint32(buf[12:], p.PC)
	be.PutUint32(buf[16:], p.FaultAddr)
	be.PutUint32(buf[20:], p.SP)
	be.PutUint64(buf[24:], p.Cycles)
	for i, fp := range p.FramePtrs {
		be.PutUint32(buf[32+4*i:], fp)
	}
	return buf
}

// ErrMalformed reports a datagram that is not a crash packet (noise on the
// collection port, or a torn packet).
var ErrMalformed = errors.New("crashnet: malformed packet")

// Unmarshal decodes a packet.
func Unmarshal(buf []byte) (Packet, error) {
	if len(buf) < packetSize {
		return Packet{}, fmt.Errorf("%w: short packet (%d bytes)", ErrMalformed, len(buf))
	}
	be := binary.BigEndian
	var p Packet
	p.Seq = be.Uint32(buf[0:])
	p.Platform = isa.Platform(be.Uint32(buf[4:]))
	p.Cause = isa.CrashCause(be.Uint32(buf[8:]))
	p.PC = be.Uint32(buf[12:])
	p.FaultAddr = be.Uint32(buf[16:])
	p.SP = be.Uint32(buf[20:])
	p.Cycles = be.Uint64(buf[24:])
	for i := range p.FramePtrs {
		p.FramePtrs[i] = be.Uint32(buf[32+4*i:])
	}
	return p, nil
}

// Sender ships crash packets toward a collector.
type Sender interface {
	Send(p Packet) error
}

// Collector receives crash packets.
type Collector interface {
	// Recv returns the next packet, or false when none is pending.
	Recv() (Packet, bool)
	// Close releases transport resources.
	Close() error
}

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("crashnet: closed")

// --- In-memory transport ---

// Channel is an in-process transport implementing both Sender and Collector.
// The zero value is not usable; construct with NewChannel.
type Channel struct {
	mu     sync.Mutex
	queue  []Packet
	closed bool
}

var (
	_ Sender    = (*Channel)(nil)
	_ Collector = (*Channel)(nil)
)

// NewChannel returns an in-memory crash-packet channel.
func NewChannel() *Channel { return &Channel{} }

// Send enqueues a packet.
func (c *Channel) Send(p Packet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.queue = append(c.queue, p)
	return nil
}

// Recv dequeues the next packet.
func (c *Channel) Recv() (Packet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return Packet{}, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}

// Close marks the channel closed.
func (c *Channel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// --- UDP transport (loopback by default, as in the paper's setup) ---

// UDPCollector listens for crash packets on a UDP socket.
type UDPCollector struct {
	conn *net.UDPConn
}

// NewUDPCollector binds a UDP listener; addr "" picks a loopback port.
func NewUDPCollector(addr string) (*UDPCollector, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("crashnet: resolve: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("crashnet: listen: %w", err)
	}
	return &UDPCollector{conn: conn}, nil
}

// Addr returns the bound address for senders.
func (u *UDPCollector) Addr() string { return u.conn.LocalAddr().String() }

// ErrDrainTimeout reports a drain deadline expiring with nothing buffered:
// the socket is healthy and simply empty. It is deliberately a distinct
// type of failure from ErrMalformed — an empty socket means "drain done",
// a malformed datagram means "skip this one and keep reading" — and callers
// that conflate them either abandon packets still in the buffer or spin on
// an empty socket.
var ErrDrainTimeout = errors.New("crashnet: drain timeout (no packet buffered)")

// Recv drains one already-arrived packet, returning false when none is
// buffered (it waits at most a few milliseconds, never indefinitely).
// RecvErr is the same drain with the reason it stopped.
func (u *UDPCollector) Recv() (Packet, bool) {
	p, err := u.RecvErr()
	return p, err == nil
}

// RecvErr drains one already-arrived packet. A nil error yields a packet;
// ErrDrainTimeout means the buffer is empty (the normal end of a drain);
// anything else is a hard socket error that ends the drain permanently.
//
// A malformed datagram — noise on the port, a torn crash packet — or a
// transient read error is skipped and the drain continues within the same
// deadline, so garbage between two valid packets cannot make the caller
// abandon the second one; ErrMalformed never escapes this method.
func (u *UDPCollector) RecvErr() (Packet, error) {
	buf := make([]byte, 2*packetSize)
	if err := u.conn.SetReadDeadline(drainDeadline()); err != nil {
		return Packet{}, err
	}
	for {
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return Packet{}, ErrDrainTimeout // nothing more buffered
			}
			if transient(err) {
				continue // momentary; the deadline still bounds the drain
			}
			return Packet{}, err // hard socket error: drain cannot continue
		}
		p, err := Unmarshal(buf[:n])
		if err != nil {
			continue // malformed datagram: skip it, keep draining
		}
		return p, nil
	}
}

// RecvWait blocks until a packet arrives or the socket closes.
func (u *UDPCollector) RecvWait() (Packet, error) {
	buf := make([]byte, packetSize)
	if err := u.conn.SetReadDeadline(noDeadline()); err != nil {
		return Packet{}, err
	}
	n, _, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return Packet{}, err
	}
	return Unmarshal(buf[:n])
}

// Close closes the socket.
func (u *UDPCollector) Close() error { return u.conn.Close() }

// Send retry defaults: a crash packet is the only record of a guest crash
// (the machine degrades an unsent crash to "unknown"), so a momentary send
// failure is worth a few cheap retries.
const (
	defaultSendRetries = 3
	defaultRetryBase   = time.Millisecond
)

// UDPSender sends crash packets to a collector address. Transient send
// failures are retried with exponential backoff: losing a crash packet turns
// a diagnosed crash into an unknown one in the outcome table, so the sender
// works harder than fire-and-forget UDP normally would.
type UDPSender struct {
	conn *net.UDPConn
	// MaxRetries bounds re-transmissions after a transient failure
	// (0 = default 3); permanent errors are never retried.
	MaxRetries int
	// RetryBase is the delay before the first retry, doubling with each
	// further attempt (0 = default 1ms).
	RetryBase time.Duration

	// write/sleep are stubbed by tests to script failures without a socket.
	write func([]byte) (int, error)
	sleep func(time.Duration)
}

var _ Sender = (*UDPSender)(nil)

// NewUDPSender dials the collector.
func NewUDPSender(addr string) (*UDPSender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("crashnet: resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("crashnet: dial: %w", err)
	}
	return &UDPSender{conn: conn}, nil
}

// Send transmits one packet, retrying transient failures up to MaxRetries
// times with exponential backoff.
func (s *UDPSender) Send(p Packet) error {
	write, sleep := s.write, s.sleep
	if write == nil {
		write = s.conn.Write
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	retries := s.MaxRetries
	if retries <= 0 {
		retries = defaultSendRetries
	}
	base := s.RetryBase
	if base <= 0 {
		base = defaultRetryBase
	}
	buf := p.Marshal()
	var err error
	for attempt := 0; ; attempt++ {
		if _, err = write(buf); err == nil {
			return nil
		}
		if !transient(err) || attempt >= retries {
			return fmt.Errorf("crashnet: send: %w", err)
		}
		sleep(base << attempt)
	}
}

// Close closes the socket.
func (s *UDPSender) Close() error { return s.conn.Close() }
