// Package platform makes the ISA boundary first-class: a Descriptor
// interface plus a registry that owns everything the rest of the laboratory
// used to key off the isa.Platform enum — core construction (decoder +
// predecode cache), boot/exception-delivery semantics, crash staging and
// kernel-style crash messages, instruction boundaries for code-campaign
// target generation, snapshot CPU-state codecs, kernel stack geometry, and
// report labels.
//
// internal/cisc and internal/risc each register one Descriptor from their
// package init; consuming layers (machine, campaign, snapshot, kernel, the
// CLIs) resolve behavior through Find/MustGet/ByName instead of switching on
// the enum. Adding an ISA means registering one descriptor (plus its
// isa.PlatformInfo data) from one package — no consuming layer changes.
//
// The package is a leaf: it imports only isa and mem, so every layer can
// depend on it. Capabilities whose types live in higher layers (the cc
// compiler backend, the kernel trap glue, the staticsense classifier) are
// registered through per-layer registries in those packages for the same
// one-package-per-ISA property; see DESIGN.md §14.
package platform

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
)

// InstrRef locates one instruction inside a code image (used by the code
// campaign to pick instruction-boundary injection targets).
type InstrRef struct {
	Addr uint32
	Size uint8
}

// SysReg is one injectable system register: name, architectural width, and
// accessors bound to a live core.
type SysReg struct {
	Name string
	Bits uint
	Get  func() uint32
	Set  func(uint32)
}

// BootState carries the platform-specific boot values the machine installs
// after a reset, alongside the generic PC/SP/stack-bounds setup it performs
// itself.
type BootState struct {
	// FSBase is the per-CPU segment base (CISC).
	FSBase uint32
	// SPRG2 is the exception scratch-area pointer (RISC); the core also
	// remembers it as the expected value for delivery vetting.
	SPRG2 uint32
}

// Delivery is a core's verdict on whether interrupt delivery can proceed:
// proceed (zero value), crash with the given event, or hijack execution to
// an arbitrary PC (a wild-but-mapped scratch pointer, paper §5.2).
type Delivery struct {
	Crash bool
	Event isa.Event
	// Hijack diverts execution to HijackPC instead of delivering.
	Hijack   bool
	HijackPC uint32
}

// CallSentinel is the return address installed by BeginCall; CallDone
// reports completion when the program counter reaches it.
const CallSentinel = 0xDEAD0000

// CPUState is an opaque, platform-owned CPU checkpoint. The snapshot layer
// moves it between memory and the on-disk codec without knowing its shape.
type CPUState interface {
	// EncodeSnapshot appends the state to the snapshot byte stream.
	EncodeSnapshot(w *SnapWriter)
	// DecodeSnapshot fills the state from the snapshot byte stream.
	DecodeSnapshot(r *SnapReader)
}

// Core is the platform-generic view of a processor used by the machine
// layer. Adapters are thin; everything architectural stays in the ISA
// packages.
type Core interface {
	// Step executes exactly one instruction. Only execution engines (the
	// ISA packages' ExecEngine implementations) may call it; every other
	// layer batches through ExecEngine.RunUntil — a rule kfi-lint enforces.
	Step() isa.Event
	Reset()

	PC() uint32
	SetPC(uint32)
	SP() uint32
	SetSP(uint32)
	Mode() isa.Mode
	InterruptsEnabled() bool

	// InstallBootState applies the platform-specific architectural boot
	// values (per-CPU bases, firmware translation state).
	InstallBootState(BootState)

	// VetDelivery checks the architectural state the platform's exception
	// entry path depends on, before DeliverInterrupt runs. The zero
	// Delivery means delivery may proceed.
	VetDelivery() Delivery

	// DeliverInterrupt vectors to handler, switching to the given kernel
	// stack when interrupted in user mode.
	DeliverInterrupt(handler, kernelSP uint32) isa.Event

	// SetSyscallResult places a value in the syscall return register.
	SetSyscallResult(v uint32)
	// SyscallArgs returns the three syscall argument registers.
	SyscallArgs() (a, b, c uint32)

	// SystemRegisters returns the injectable system-register file, bound to
	// this core.
	SystemRegisters() []SysReg

	// Context save/restore for the ctxsw primitive. The context area is
	// CtxWords() 32-bit words at addr, written with raw (glue) access.
	CtxWords() int
	SaveContext(addr uint32)
	RestoreContext(addr uint32)
	// InitContext crafts a fresh context that starts executing at entry
	// with the given stack pointer and mode.
	InitContext(addr, entry, sp uint32, user bool)
	// CtxSPOffset is the byte offset of the saved stack pointer within a
	// context area (used to resolve a sleeping process's stack extent).
	CtxSPOffset() uint32
	// CtxModeUser reports whether a saved context at addr was in user mode.
	CtxModeUser(addr uint32) bool

	// SetStackBounds tells the core the current kernel stack range (used by
	// the RISC exception-entry wrapper; a no-op on CISC, which has no such
	// check — a paper finding).
	SetStackBounds(lo, hi uint32)
	// StackPointerInBounds reports whether SP is inside the current kernel
	// stack range (the RISC wrapper check).
	StackPointerInBounds() bool

	// CrashDumpPossible reports whether the embedded crash handler can run
	// and ship a dump: when it cannot, the crash counts in the paper's
	// "Hang/Unknown Crash" column.
	CrashDumpPossible() bool

	// BeginCall arranges a host-driven call to entry with the given
	// arguments and CallSentinel as the return address; CallDone reports
	// the return value once the sentinel is reached, unwinding any
	// stack-passed arguments.
	BeginCall(entry uint32, args []uint32)
	CallDone(nargs int) (ret uint32, done bool)

	// SaveCPUState captures the full CPU for a checkpoint; RestoreCPUState
	// reapplies one, failing on a state captured by a different platform.
	SaveCPUState() CPUState
	RestoreCPUState(CPUState) error

	// DisasmAt renders the instruction at pc against the current memory
	// image (best effort; raw bytes on failure, "<unmapped>" off the map).
	DisasmAt(pc uint32) string

	Clock() *isa.CycleCounter
	Debug() *isa.DebugUnit
	SetTrace(fn func(pc uint32, cost uint8))
	PendingDataBreak() (slot int, access isa.DataAccess, addr uint32, ok bool)
}

// Descriptor is everything one platform contributes to the laboratory.
// Report labels (String/Short) and the crash-cause vocabulary live in the
// isa registry under the same Platform value; a Descriptor must be
// registered only after its isa.PlatformInfo.
type Descriptor interface {
	// ID is the platform's isa enum value.
	ID() isa.Platform
	// Aliases lists the names ByName resolves, in addition to the isa
	// Short tag (e.g. "cisc", "ppc").
	Aliases() []string

	// NewCore builds the platform's CPU (decoder, predecode cache, debug
	// unit) bound to the given memory.
	NewCore(m *mem.Memory) Core
	// NewCPUState returns an empty CPU state for the snapshot decoder.
	NewCPUState() CPUState

	// Engines lists the execution engines the platform supports, in enum
	// order. Every platform must support EngineInterp (the reference
	// interpreter); the registry rejects descriptors that don't.
	Engines() []EngineKind
	// NewEngine builds the given engine bound to a core this descriptor
	// built. It fails on kinds absent from Engines().
	NewEngine(kind EngineKind, c Core) (ExecEngine, error)

	// BusWindow returns the platform's unclaimed processor-local bus
	// window, in which accesses machine-check rather than page-fault
	// (ok=false when the platform has none).
	BusWindow() (lo, hi uint32, ok bool)
	// KernelStackSize is the per-process kernel stack size.
	KernelStackSize() uint32
	// CrashStages returns the Figure 3 exception-latency stages: hardware
	// exception entry and the software handler (including any wrapper).
	CrashStages() (hw, sw uint64)
	// CrashMessage renders a crash the way the platform's kernel would
	// print it.
	CrashMessage(cause isa.CrashCause, pc, faultAddr, sp uint32) string
	// RegisterLabels returns the program-counter and stack-pointer labels
	// used in crash dumps ("EIP"/"ESP", "NIP"/"R1 ").
	RegisterLabels() (pc, sp string)

	// InstructionBoundaries decodes a function's code bytes into
	// instruction start addresses and sizes (the code campaign's bit-flip
	// target space). base is the guest address of code[0].
	InstructionBoundaries(code []byte, base uint32) []InstrRef
}
