package platform

import "kfi/internal/isa"

// EngineKind selects one of a platform's execution engines. All engines
// execute the guest bit-identically — same architectural state, cycle
// counts, and events for every instruction — and differ only in wall-clock
// throughput. The interpreter is the reference; every platform must provide
// it.
type EngineKind uint8

// Engine kinds. The zero value is reserved to mean "platform default" in
// configuration structs, so journal headers and specs can omit it.
const (
	// EngineInterp is the reference interpreter: fetch + decode + execute
	// every step, no caching of decoded instructions.
	EngineInterp EngineKind = iota + 1
	// EnginePredecode is the interpreter with the per-page decoded-
	// instruction cache (PR 2), invalidated by memory write-generation
	// counters.
	EnginePredecode
	// EngineTranslate is the basic-block translator: straight-line guest
	// code becomes arrays of fused Go closures, keyed per page and
	// invalidated by the same write-generation counters; anything it cannot
	// (or must not) run falls back to the interpreter.
	EngineTranslate

	numEngineKinds
)

// String returns the engine name used by flags, journal headers, and specs.
func (k EngineKind) String() string {
	switch k {
	case EngineInterp:
		return "interp"
	case EnginePredecode:
		return "predecode"
	case EngineTranslate:
		return "translate"
	default:
		return "engine?"
	}
}

// EngineKinds returns every defined engine kind, in enum order.
func EngineKinds() []EngineKind {
	return []EngineKind{EngineInterp, EnginePredecode, EngineTranslate}
}

// EngineByName resolves an engine kind from its String name.
func EngineByName(name string) (EngineKind, bool) {
	for _, k := range EngineKinds() {
		if name == k.String() {
			return k, true
		}
	}
	return 0, false
}

// DefaultEngine returns the engine a descriptor runs when none is requested:
// the predecoded interpreter when supported, otherwise the reference
// interpreter. The default is deliberately NOT the translator — the default
// engine is the behavior every golden journal in the repo pins.
func DefaultEngine(d Descriptor) EngineKind {
	for _, k := range d.Engines() {
		if k == EnginePredecode {
			return EnginePredecode
		}
	}
	return EngineInterp
}

// SupportsEngine reports whether kind appears in d.Engines().
func SupportsEngine(d Descriptor, kind EngineKind) bool {
	for _, k := range d.Engines() {
		if k == kind {
			return true
		}
	}
	return false
}

// EngineStats are the observability counters an engine maintains. The
// interpreter engines report all zeros; the translator counts its cache
// behavior and how often it had to fall back to stepping.
type EngineStats struct {
	// Translated counts basic blocks decoded into closure arrays.
	Translated uint64
	// Hits counts dispatches served from the closure cache.
	Hits uint64
	// Invalidations counts blocks dropped because a page's write generation
	// moved (stores or injected flips into translated code).
	Invalidations uint64
	// Fallbacks counts dispatches delegated to the interpreter (tracing or
	// debug hardware armed, untranslatable code).
	Fallbacks uint64
}

// Add accumulates other into s.
func (s *EngineStats) Add(other EngineStats) {
	s.Translated += other.Translated
	s.Hits += other.Hits
	s.Invalidations += other.Invalidations
	s.Fallbacks += other.Fallbacks
}

// Zero reports whether no counter has fired.
func (s EngineStats) Zero() bool { return s == EngineStats{} }

// ExecEngine executes guest instructions on behalf of the machine layer.
// Engines own the batching loop that used to be Core.RunUntil; the machine
// never steps a core directly. Every engine must be observationally
// equivalent to calling Core.Step in a loop: same architectural state, cycle
// counts, and events, instruction for instruction.
type ExecEngine interface {
	// Kind identifies the engine.
	Kind() EngineKind
	// RunUntil executes until the core clock reaches limit or an instruction
	// produces a non-EvNone event, which it returns; EvNone means the limit
	// was reached. Because every instruction costs at least one cycle,
	// RunUntil(clock+1) executes exactly one instruction.
	RunUntil(limit uint64) isa.Event
	// Flush drops all cached decoded/translated state. Stale entries are
	// already invalidated by memory generation counters; flushing bounds
	// memory and establishes cold-cache conditions (e.g. after a snapshot
	// restore, so engine state never leaks into checkpoints).
	Flush()
	// Stats returns the engine's counters since construction or the last
	// ResetStats.
	Stats() EngineStats
	// ResetStats zeroes the counters.
	ResetStats()
}
