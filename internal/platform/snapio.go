package platform

import (
	"encoding/binary"
	"fmt"

	"kfi/internal/isa"
)

// SnapWriter and SnapReader are the big-endian cursors a platform's CPUState
// uses to serialize itself inside a snapshot file. They exist so the
// snapshot codec never needs to know a platform's register layout: the wire
// format of each CPU block is owned by the platform package that defines the
// state, while framing, checksumming, and the sparse memory image stay in
// internal/snapshot.

// SnapWriter appends big-endian fields to a snapshot byte stream.
type SnapWriter struct {
	buf []byte
}

// NewSnapWriter wraps an existing buffer (the snapshot encoder's stream);
// Bytes returns it with the CPU block appended.
func NewSnapWriter(buf []byte) *SnapWriter { return &SnapWriter{buf: buf} }

// Bytes returns the accumulated stream.
func (w *SnapWriter) Bytes() []byte { return w.buf }

// U32 appends a big-endian 32-bit word.
func (w *SnapWriter) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian 64-bit word.
func (w *SnapWriter) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bool appends a bool as a 32-bit 0/1 word.
func (w *SnapWriter) Bool(b bool) {
	if b {
		w.U32(1)
	} else {
		w.U32(0)
	}
}

// CPUTail appends the state every platform shares: the debug-register file,
// the cycle counter, and the pending data-breakpoint trap. Keeping it here
// guarantees all platforms serialize the common tail identically.
func (w *SnapWriter) CPUTail(debug [isa.DebugSlots]isa.Breakpoint, clk isa.ClockState,
	slot int, access isa.DataAccess, addr uint32) {
	for _, bp := range debug {
		w.U32(uint32(bp.Kind))
		w.U32(bp.Addr)
		w.U32(bp.Len)
		w.Bool(bp.Enabled)
	}
	w.U64(clk.Cycles)
	w.U64(clk.Mark)
	w.U32(uint32(int32(slot)))
	w.U32(uint32(access))
	w.U32(addr)
}

// SnapReader is a sticky-error big-endian cursor over a snapshot CPU block.
type SnapReader struct {
	buf []byte
	off int
	err error
}

// NewSnapReader wraps the unread remainder of a snapshot body.
func NewSnapReader(buf []byte) *SnapReader { return &SnapReader{buf: buf} }

// Offset reports how many bytes have been consumed.
func (r *SnapReader) Offset() int { return r.off }

// Err returns the first error encountered (a truncated block), if any.
func (r *SnapReader) Err() error { return r.err }

func (r *SnapReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("platform: truncated CPU state block")
		}
		return make([]byte, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U32 reads a big-endian 32-bit word.
func (r *SnapReader) U32() uint32 { return binary.BigEndian.Uint32(r.take(4)) }

// U64 reads a big-endian 64-bit word.
func (r *SnapReader) U64() uint64 { return binary.BigEndian.Uint64(r.take(8)) }

// Bool reads a 32-bit 0/1 word.
func (r *SnapReader) Bool() bool { return r.U32() != 0 }

// CPUTail reads the shared tail written by SnapWriter.CPUTail.
func (r *SnapReader) CPUTail(debug *[isa.DebugSlots]isa.Breakpoint, clk *isa.ClockState,
	slot *int, access *isa.DataAccess, addr *uint32) {
	for i := range debug {
		debug[i] = isa.Breakpoint{
			Kind:    isa.BreakKind(r.U32()),
			Addr:    r.U32(),
			Len:     r.U32(),
			Enabled: r.Bool(),
		}
	}
	clk.Cycles = r.U64()
	clk.Mark = r.U64()
	*slot = int(int32(r.U32()))
	*access = isa.DataAccess(r.U32())
	*addr = r.U32()
}
