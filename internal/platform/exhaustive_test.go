package platform_test

import (
	"fmt"
	"strings"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/platform"
	_ "kfi/internal/platform/all"
)

// TestCauseOwnershipExhaustive ties the crash-cause vocabulary to the
// descriptor registry: every registered platform claims a non-empty,
// duplicate-free cause list whose entries report that platform as their
// owner; no cause is claimed twice across platforms; and every built-in
// cause value is claimed by a platform that also registered a Descriptor —
// so no cause can appear in a report without a platform able to produce it.
func TestCauseOwnershipExhaustive(t *testing.T) {
	claimed := map[isa.CrashCause]isa.Platform{}
	for _, d := range platform.All() {
		p := d.ID()
		causes := isa.Causes(p)
		if len(causes) == 0 {
			t.Errorf("%v: no crash causes registered", p)
		}
		seen := map[isa.CrashCause]bool{}
		for _, c := range causes {
			if c == isa.CauseNone {
				t.Errorf("%v claims CauseNone", p)
			}
			if seen[c] {
				t.Errorf("%v lists cause %v twice", p, c)
			}
			seen[c] = true
			if owner := c.Platform(); owner != p {
				t.Errorf("cause %v in %v's list reports owner %v", c, p, owner)
			}
			if prev, ok := claimed[c]; ok {
				t.Errorf("cause %v claimed by both %v and %v", c, prev, p)
			}
			claimed[c] = p
			if s := c.String(); s == fmt.Sprintf("CrashCause(%d)", int(c)) {
				t.Errorf("cause %v of %v has no registered name", int(c), p)
			}
		}
	}
	// Every built-in cause value must be claimed by a descriptor-backed
	// platform: an unclaimed constant is dead vocabulary no crash handler
	// can report and no table can label.
	for c := isa.CauseNone + 1; c < isa.FirstExtensionCause; c++ {
		owner := c.Platform()
		if owner == 0 {
			t.Errorf("built-in cause %d (%v) is claimed by no platform", int(c), c)
			continue
		}
		if _, ok := platform.Find(owner); !ok {
			t.Errorf("built-in cause %v is owned by %v, which has no Descriptor", c, owner)
		}
	}
}

// TestInvalidMemorySubset checks the paper's "invalid memory access"
// grouping stays inside each platform's cause list.
func TestInvalidMemorySubset(t *testing.T) {
	for _, d := range platform.All() {
		p := d.ID()
		owned := map[isa.CrashCause]bool{}
		for _, c := range isa.Causes(p) {
			owned[c] = true
		}
		for _, c := range isa.InvalidMemoryCauses(p) {
			if !owned[c] {
				t.Errorf("%v invalid-memory cause %v is not in its cause list", p, c)
			}
		}
	}
}

// expectPanic runs fn and requires it to panic with a message containing
// substr — the registries must fail loudly and name the offender.
func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic (want one mentioning %q)", substr)
			return
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Errorf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

// fakeDesc wraps a real descriptor, overriding identity — enough to probe
// the registration checks without implementing a CPU.
type fakeDesc struct {
	platform.Descriptor
	id      isa.Platform
	aliases []string
}

func (f fakeDesc) ID() isa.Platform  { return f.id }
func (f fakeDesc) Aliases() []string { return f.aliases }

// Extension IDs burned by the panic tests below. They stay registered in the
// isa registry after the expected panics (registration is not transactional
// across the two registries), so they must not collide with IDs other tests
// use.
const (
	panicTestEmptyAlias = isa.Platform(97)
	panicTestNameClash  = isa.Platform(98)
)

func TestDescriptorRegistrationPanics(t *testing.T) {
	base := platform.MustGet(isa.CISC)

	expectPanic(t, "Register(nil)", func() { platform.Register(nil) })
	expectPanic(t, "zero isa.Platform ID", func() {
		platform.Register(fakeDesc{Descriptor: base, id: 0})
	})
	expectPanic(t, "isa.PlatformInfo", func() {
		platform.Register(fakeDesc{Descriptor: base, id: isa.Platform(9999)})
	})
	expectPanic(t, "duplicate descriptor", func() { platform.Register(base) })

	isa.RegisterPlatform(panicTestEmptyAlias, isa.PlatformInfo{Name: "empty-alias probe", Short: "exh97"})
	expectPanic(t, "empty name", func() {
		platform.Register(fakeDesc{Descriptor: base, id: panicTestEmptyAlias, aliases: []string{""}})
	})

	isa.RegisterPlatform(panicTestNameClash, isa.PlatformInfo{Name: "name-clash probe", Short: "exh98"})
	expectPanic(t, "claimed by both", func() {
		platform.Register(fakeDesc{Descriptor: base, id: panicTestNameClash, aliases: []string{"p4"}})
	})

	if _, ok := platform.Find(panicTestEmptyAlias); ok {
		t.Error("failed registration left a descriptor behind")
	}
	if _, ok := platform.ByName("exh98"); ok {
		t.Error("failed registration left a name binding behind")
	}
}

func TestPlatformInfoRegistrationPanics(t *testing.T) {
	expectPanic(t, "zero Platform value", func() {
		isa.RegisterPlatform(0, isa.PlatformInfo{Name: "x", Short: "x"})
	})
	expectPanic(t, "empty Name or Short", func() {
		isa.RegisterPlatform(isa.Platform(96), isa.PlatformInfo{Name: "no short"})
	})
	expectPanic(t, "duplicate RegisterPlatform", func() {
		isa.RegisterPlatform(isa.CISC, isa.PlatformInfo{Name: "again", Short: "p4b"})
	})
	expectPanic(t, "claims CauseNone", func() {
		isa.RegisterPlatform(isa.Platform(96), isa.PlatformInfo{
			Name: "x", Short: "x96", Causes: []isa.CrashCause{isa.CauseNone},
		})
	})
	expectPanic(t, "claimed by both", func() {
		isa.RegisterPlatform(isa.Platform(96), isa.PlatformInfo{
			Name: "x", Short: "x96",
			Causes:     []isa.CrashCause{isa.CauseBadPaging},
			CauseNames: map[isa.CrashCause]string{isa.CauseBadPaging: "stolen"},
		})
	})
	expectPanic(t, "has no name", func() {
		isa.RegisterPlatform(isa.Platform(96), isa.PlatformInfo{
			Name: "x", Short: "x96",
			Causes: []isa.CrashCause{isa.FirstExtensionCause + 90},
		})
	})
	expectPanic(t, "not in its cause list", func() {
		c := isa.FirstExtensionCause + 91
		isa.RegisterPlatform(isa.Platform(96), isa.PlatformInfo{
			Name: "x", Short: "x96",
			Causes:        []isa.CrashCause{c},
			CauseNames:    map[isa.CrashCause]string{c: "ext"},
			InvalidMemory: []isa.CrashCause{c + 1},
		})
	})
	// Every probe above must have failed before mutating the registry.
	if isa.Registered(isa.Platform(96)) {
		t.Error("failed RegisterPlatform left platform 96 registered")
	}
}
