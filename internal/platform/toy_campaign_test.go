package platform_test

// End-to-end proof of the registry's extensibility claim: the toy platform
// defined in toy_test.go boots, profiles, and runs injection campaigns
// through the unmodified machine/campaign/inject/snapshot stack. Nothing in
// those layers knows the toy ISA exists — every platform-specific decision
// flows through the Descriptor registered from this _test package.

import (
	"encoding/binary"
	"reflect"
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/cc"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/machine"
	"kfi/internal/platform"
)

// toyProgram assembles the toy benchmark:
//
//	toy_boot:     r1 = 0; r4 = 1; r4 += r4 (x12, so r4 = 4096);
//	              r2 = data[0]; r3 = data[1]
//	toy_loop:     r1 += r2; r1 ^= r3; r4--; loop while r4 != 0
//	toy_epilogue: data[2] = r1; SYS 0 (report r1 as the checksum)
//
// The loop retires ~16k of the run's ~16.4k instructions, so the profiler
// must attribute >95% of cycles to toy_loop and the code campaign must
// target it.
func toyProgram() []byte {
	ins := func(op, rd, n byte) []byte { return []byte{op, rd<<4 | n} }
	var code []byte
	emit := func(bs []byte) { code = append(code, bs...) }

	emit(ins(opLI, 1, 0))
	emit(ins(opLI, 4, 1))
	for i := 0; i < 12; i++ {
		emit(ins(opADD, 4, 4))
	}
	emit(ins(opLD, 2, 0))
	emit(ins(opLD, 3, 1))
	// toy_loop at toyCodeBase+0x20:
	emit(ins(opADD, 1, 2))
	emit(ins(opXOR, 1, 3))
	emit(ins(opDEC, 4, 0))
	emit(ins(opJNZ, 4, 3)) // back 4 instructions, to toy_loop
	// toy_epilogue at toyCodeBase+0x28:
	emit(ins(opST, 1, 2))
	emit(ins(opSYS, 0, 0))
	return code
}

// toyImage hand-builds the linked image the machine boots — the toy has no
// compiler, so the "kernel" is assembled above and the data section holds
// the two benchmark inputs.
func toyImage() *cc.Image {
	code := toyProgram()
	data := make([]byte, 64) // 16 data words
	binary.BigEndian.PutUint32(data[0:], 0x1234_5678)
	binary.BigEndian.PutUint32(data[4:], 0x0BAD_CAFE)
	loop := toyCodeBase + 0x20
	epi := toyCodeBase + 0x28
	end := toyCodeBase + uint32(len(code))
	return &cc.Image{
		Platform: toyID,
		Code:     code,
		CodeBase: toyCodeBase,
		Data:     data,
		DataBase: toyDataBase,
		Syms:     map[string]uint32{"kstart": toyCodeBase},
		Funcs: []cc.FuncRange{
			{Name: "toy_boot", Start: toyCodeBase, End: loop},
			{Name: "toy_loop", Start: loop, End: epi},
			{Name: "toy_epilogue", Start: epi, End: end},
		},
	}
}

// toySystem boots a sealed toy guest. Only the System fields the non-stack
// campaigns consume are populated; Src and Glue stay nil exactly because no
// consuming layer may require them for a platform that does not need them.
func toySystem(t *testing.T) *kernel.System {
	t.Helper()
	img := toyImage()
	m, err := machine.New(machine.Config{
		Platform:  toyID,
		Image:     img,
		MemSize:   0x10000,
		BootEntry: img.Sym("kstart"),
		BootSP:    toyDataBase + 0x1000,
	})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	m.Seal()
	return &kernel.System{
		Platform:    toyID,
		Machine:     m,
		KernelImage: img,
		Procs:       make([]kernel.ProcSpec, 1),
		KStackSize:  0x400,
	}
}

// toyGoldenChecksum computes what the benchmark reports when fault-free.
func toyGoldenChecksum() uint32 {
	var r1 uint32
	for i := 0; i < 4096; i++ {
		r1 = (r1 + 0x1234_5678) ^ 0x0BAD_CAFE
	}
	return r1
}

func TestToyPlatformGoldenRun(t *testing.T) {
	sys := toySystem(t)
	golden, err := campaign.Golden(sys)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if want := toyGoldenChecksum(); golden != want {
		t.Fatalf("golden checksum %08x, want %08x", golden, want)
	}

	profile, err := campaign.ProfileKernel(sys)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	hot := profile.Hot(0.95)
	if len(hot) != 1 || hot[0].Name != "toy_loop" {
		t.Fatalf("hot functions %v, want just toy_loop", hot)
	}
}

// TestToyPlatformDeterministicInjections pins down two hand-picked
// injections whose outcomes are fully predictable from the ISA definition.
func TestToyPlatformDeterministicInjections(t *testing.T) {
	sys := toySystem(t)
	golden, err := campaign.Golden(sys)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}

	// Flip bit 7 of the LD r2,0 opcode at +0x1C: 0x03 becomes 0x83, an
	// undecodable opcode, so the run must crash with the toy's illegal-
	// instruction cause — proving extension causes flow through the
	// machine's crash classification unmodified.
	res := inject.RunOne(sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     toyCodeBase + 0x1C,
		ByteOff:  0,
		Bit:      7,
	}, golden)
	if res.Outcome != inject.OCrash {
		t.Fatalf("code flip outcome %v, want crash (cause %v)", res.Outcome, res.Cause)
	}
	if res.Cause != toyCauseIllegal {
		t.Fatalf("code flip cause %v, want %v", res.Cause, toyCauseIllegal)
	}
	if got := res.Cause.Platform(); got != toyID {
		t.Fatalf("crash cause owner %v, want %v", got, toyID)
	}

	// Flip bit 0 of data[0]: the loop folds the corrupted word into the
	// checksum 4096 times, the run completes, and the bad result is a
	// fail-silence violation.
	res = inject.RunOne(sys, inject.Target{
		Campaign: inject.CampData,
		Addr:     toyDataBase,
		Bit:      0,
	}, golden)
	if res.Outcome != inject.OFailSilence {
		t.Fatalf("data flip outcome %v, want fail-silence", res.Outcome)
	}
	if !res.Activated {
		t.Fatal("data flip not marked activated despite the loop reading it")
	}
}

// TestToyPlatformMiniCampaign runs code, data, and sysreg campaigns twice —
// fork-from-golden and replay-from-boot — and requires identical results.
// This is the same equivalence contract the built-in platforms' golden tests
// enforce, demonstrated on a platform the campaign layer has never seen.
func TestToyPlatformMiniCampaign(t *testing.T) {
	sys := toySystem(t)
	golden, err := campaign.Golden(sys)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	profile, err := campaign.ProfileKernel(sys)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}

	specs := []campaign.Spec{
		{Campaign: inject.CampCode, N: 12, Seed: 41},
		{Campaign: inject.CampData, N: 12, Seed: 42},
		{Campaign: inject.CampSysReg, N: 6, Seed: 43},
	}
	for _, spec := range specs {
		fork, err := campaign.Run(sys, golden, profile, spec, nil)
		if err != nil {
			t.Fatalf("%v fork-from-golden: %v", spec.Campaign, err)
		}
		replay, err := campaign.RunWith(sys, golden, profile, spec, nil,
			campaign.ExecOptions{Replay: true})
		if err != nil {
			t.Fatalf("%v replay: %v", spec.Campaign, err)
		}
		if !reflect.DeepEqual(fork.Results, replay.Results) {
			t.Errorf("%v: fork-from-golden and replay outcomes differ", spec.Campaign)
			for i := range fork.Results {
				if !reflect.DeepEqual(fork.Results[i], replay.Results[i]) {
					t.Errorf("  injection %d:\n    fork:   %+v\n    replay: %+v",
						i, fork.Results[i], replay.Results[i])
				}
			}
			continue
		}
		counts := map[inject.Outcome]int{}
		for _, r := range fork.Results {
			counts[r.Outcome]++
		}
		t.Logf("%v x%d: %v", spec.Campaign, spec.N, counts)
	}
}

// TestToyPlatformResolvesByName double-checks the registry exposes the toy
// like any built-in platform.
func TestToyPlatformResolvesByName(t *testing.T) {
	if !isa.Registered(toyID) {
		t.Fatal("toy platform not registered with isa")
	}
	if got := toyID.Short(); got != "toy" {
		t.Fatalf("toyID.Short() = %q, want \"toy\"", got)
	}
	for _, name := range []string{"toy", "toy16"} {
		d, ok := platform.ByName(name)
		if !ok || d.ID() != toyID {
			t.Errorf("platform.ByName(%q) = (%v, %v), want the toy descriptor", name, d, ok)
		}
	}
}
