package platform

import (
	"fmt"
	"sort"
	"strings"

	"kfi/internal/isa"
)

var (
	descriptors = map[isa.Platform]Descriptor{}
	byName      = map[string]Descriptor{}
)

// Register adds a platform descriptor to the registry. It panics on nil or
// zero-ID descriptors, duplicate registrations, name collisions, or a
// descriptor whose isa.PlatformInfo has not been registered first —
// registration bugs must fail at init time with a message naming the
// offender, not surface later as a missing capability.
func Register(d Descriptor) {
	if d == nil {
		panic("platform: Register(nil)")
	}
	p := d.ID()
	if p == 0 {
		panic("platform: Register with zero isa.Platform ID")
	}
	if !isa.Registered(p) {
		panic(fmt.Sprintf("platform: descriptor %d registered before its isa.PlatformInfo (call isa.RegisterPlatform first)", int(p)))
	}
	if _, ok := descriptors[p]; ok {
		panic(fmt.Sprintf("platform: duplicate descriptor for %v", p))
	}
	engines := d.Engines()
	if len(engines) == 0 {
		panic(fmt.Sprintf("platform: %v registers no execution engines", p))
	}
	hasInterp := false
	for _, k := range engines {
		if k == EngineInterp {
			hasInterp = true
		}
		if k < EngineInterp || k >= numEngineKinds {
			panic(fmt.Sprintf("platform: %v registers unknown engine kind %d", p, int(k)))
		}
	}
	if !hasInterp {
		panic(fmt.Sprintf("platform: %v does not support the reference interpreter engine", p))
	}
	names := append([]string{p.Short()}, d.Aliases()...)
	for _, n := range names {
		n = strings.ToLower(n)
		if n == "" {
			panic(fmt.Sprintf("platform: %v registers an empty name", p))
		}
		if prev, ok := byName[n]; ok {
			panic(fmt.Sprintf("platform: name %q claimed by both %v and %v", n, prev.ID(), p))
		}
	}
	descriptors[p] = d
	for _, n := range names {
		byName[strings.ToLower(n)] = d
	}
}

// Find returns the descriptor for p, if registered.
func Find(p isa.Platform) (Descriptor, bool) {
	d, ok := descriptors[p]
	return d, ok
}

// MustGet returns the descriptor for p, panicking with a clear message when
// the platform was never registered (a wiring bug, not a runtime condition).
func MustGet(p isa.Platform) Descriptor {
	d, ok := descriptors[p]
	if !ok {
		panic(fmt.Sprintf("platform: no descriptor registered for %v (missing import of the platform package?)", p))
	}
	return d
}

// ByName resolves a platform by its isa Short tag or one of its aliases,
// case-insensitively ("p4", "cisc", "g4", "ppc", ...).
func ByName(name string) (Descriptor, bool) {
	d, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	return d, ok
}

// All returns every registered descriptor, ordered by platform ID.
func All() []Descriptor {
	out := make([]Descriptor, 0, len(descriptors))
	for _, d := range descriptors {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Names returns every registered lookup name, sorted (for error messages).
func Names() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
