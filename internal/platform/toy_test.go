package platform_test

// A third, test-only platform: a fixed-16-bit "toy" ISA registered entirely
// from this _test package. It exists to prove the registry's extensibility
// claim: adding an ISA is one isa.RegisterPlatform call plus one
// platform.Register call — no edits to internal/machine, internal/campaign,
// internal/snapshot, or any other consuming layer. toy_campaign_test.go
// boots it and runs real injection campaigns through the unmodified stack.
//
// Encoding: every instruction is two bytes, [opcode][arg], with arg packing
// a register in the high nibble and a register/immediate in the low nibble.
// The core is deliberately minimal — no interrupts (InterruptsEnabled is
// always false, so the machine's timer never delivers), no user mode, and
// hypercall-only syscalls — which is exactly the profile the machine layer
// supports without any platform trap glue.

import (
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// Toy platform identity and memory map. The extension ID and crash causes
// live above the built-in ranges.
const (
	toyID = isa.Platform(3)

	toyCodeBase = uint32(0x1000)
	toyDataBase = uint32(0x3000)

	toyCauseIllegal = isa.FirstExtensionCause + iota // undecodable opcode
	toyCauseBadAddr                                  // data or fetch fault
)

// Toy opcodes.
const (
	opHALT = 0x00 // halt (idle forever: the machine reports a hang)
	opLI   = 0x01 // LI rd, imm4:  rd = imm
	opADD  = 0x02 // ADD rd, rs:   rd += rs
	opLD   = 0x03 // LD rd, n:     rd = word at toyDataBase+4n
	opST   = 0x04 // ST rd, n:     word at toyDataBase+4n = rd
	opDEC  = 0x05 // DEC rd:       rd--
	opJNZ  = 0x06 // JNZ rd, n:    if rd != 0, branch back n+1 instructions
	opSYS  = 0x07 // SYS n:        hypercall 0xF000+n, args in r1..r3
	opXOR  = 0x09 // XOR rd, rs:   rd ^= rs
)

const toyInstrCost = 2 // cycles per instruction

func init() {
	isa.RegisterPlatform(toyID, isa.PlatformInfo{
		Name:      "Toy-16 (test)",
		Short:     "toy",
		BigEndian: true,
		Causes: []isa.CrashCause{
			toyCauseIllegal, toyCauseBadAddr,
		},
		InvalidMemory: []isa.CrashCause{toyCauseBadAddr},
		CauseNames: map[isa.CrashCause]string{
			toyCauseIllegal: "Toy Illegal Instruction",
			toyCauseBadAddr: "Toy Bad Address",
		},
	})
	platform.Register(toyDescriptor{})
}

type toyDescriptor struct{}

func (toyDescriptor) ID() isa.Platform  { return toyID }
func (toyDescriptor) Aliases() []string { return []string{"toy16"} }

func (toyDescriptor) NewCore(m *mem.Memory) platform.Core {
	c := &toyCore{mem: m}
	c.Reset()
	return c
}

func (toyDescriptor) NewCPUState() platform.CPUState { return &toyState{} }

func (toyDescriptor) Engines() []platform.EngineKind {
	return []platform.EngineKind{platform.EngineInterp}
}

func (toyDescriptor) NewEngine(kind platform.EngineKind, core platform.Core) (platform.ExecEngine, error) {
	c, ok := core.(*toyCore)
	if !ok {
		return nil, fmt.Errorf("toy: engine %v requires a toy core, got %T", kind, core)
	}
	if kind != platform.EngineInterp {
		return nil, fmt.Errorf("toy: unsupported engine %v", kind)
	}
	return toyEngine{c}, nil
}

// toyEngine is the toy platform's sole engine: the interpreter loop.
type toyEngine struct{ c *toyCore }

func (e toyEngine) Kind() platform.EngineKind       { return platform.EngineInterp }
func (e toyEngine) RunUntil(limit uint64) isa.Event { return e.c.RunUntil(limit) }
func (e toyEngine) Flush()                          {}
func (e toyEngine) Stats() platform.EngineStats     { return platform.EngineStats{} }
func (e toyEngine) ResetStats()                     {}

func (toyDescriptor) BusWindow() (uint32, uint32, bool) { return 0, 0, false }
func (toyDescriptor) KernelStackSize() uint32           { return 0x400 }
func (toyDescriptor) CrashStages() (uint64, uint64)     { return 100, 50 }
func (toyDescriptor) RegisterLabels() (string, string)  { return "PC ", "SP " }

func (toyDescriptor) CrashMessage(cause isa.CrashCause, pc, faultAddr, _ uint32) string {
	return fmt.Sprintf("toy: %v at pc %04x addr %04x", cause, pc, faultAddr)
}

func (toyDescriptor) InstructionBoundaries(code []byte, base uint32) []platform.InstrRef {
	var out []platform.InstrRef
	for off := uint32(0); off+2 <= uint32(len(code)); off += 2 {
		out = append(out, platform.InstrRef{Addr: base + off, Size: 2})
	}
	return out
}

// toyCore implements platform.Core for the toy ISA.
type toyCore struct {
	mem *mem.Memory
	r   [8]uint32
	pc  uint32
	ctl uint32 // the single injectable "system register"

	debug isa.DebugUnit
	clk   isa.CycleCounter
	trace func(pc uint32, cost uint8)

	dbSlot   int
	dbAccess isa.DataAccess
	dbAddr   uint32
}

var _ platform.Core = (*toyCore)(nil)

func (c *toyCore) Reset() {
	c.r = [8]uint32{}
	c.pc = 0
	c.ctl = 0
	c.debug.ClearAll()
	c.dbSlot = -1
}

func (c *toyCore) exception(cause isa.CrashCause, at, addr uint32) isa.Event {
	c.pc = at
	return isa.Event{Kind: isa.EvException, Cause: cause, FaultAddr: addr}
}

// Step mirrors the built-in cores' protocol: an armed instruction breakpoint
// reports before execution; data breakpoints report after the instruction
// completes; the clock advances and the trace hook fires per retired
// instruction.
func (c *toyCore) Step() isa.Event {
	if c.debug.Armed(isa.BreakInstruction) {
		if s := c.debug.HitInstruction(c.pc); s >= 0 {
			return isa.Event{Kind: isa.EvInstrBreak, Slot: s, BreakAddr: c.pc}
		}
	}
	c.dbSlot = -1

	pc := c.pc
	bs, f := c.mem.Fetch(pc, 2, false)
	if f != nil {
		return c.exception(toyCauseBadAddr, pc, pc)
	}
	op, arg := bs[0], bs[1]
	rd, n := (arg>>4)&7, arg&0x0F
	c.pc = pc + 2

	var ev isa.Event
	switch op {
	case opHALT:
		ev = isa.Event{Kind: isa.EvHalt}
	case opLI:
		c.r[rd] = uint32(n)
	case opADD:
		c.r[rd] += c.r[n&7]
	case opXOR:
		c.r[rd] ^= c.r[n&7]
	case opDEC:
		c.r[rd]--
	case opLD:
		addr := toyDataBase + 4*uint32(n)
		if f := c.mem.Check(addr, 4, false, false); f != nil {
			return c.exception(toyCauseBadAddr, pc, addr)
		}
		v, _ := c.mem.Read(addr, 4, false)
		c.r[rd] = v
		c.watchData(addr, isa.AccessRead)
	case opST:
		addr := toyDataBase + 4*uint32(n)
		if f := c.mem.Write(addr, 4, c.r[rd], false); f != nil {
			return c.exception(toyCauseBadAddr, pc, addr)
		}
		c.watchData(addr, isa.AccessWrite)
	case opJNZ:
		if c.r[rd] != 0 {
			c.pc -= 2 * (uint32(n) + 1)
		}
	case opSYS:
		ev = isa.Event{Kind: isa.EvSyscall, SysNo: 0xF000 + uint32(n)}
	default:
		return c.exception(toyCauseIllegal, pc, pc)
	}

	c.clk.Advance(toyInstrCost)
	if c.trace != nil {
		c.trace(pc, toyInstrCost)
	}
	if ev.Kind != isa.EvNone {
		return ev
	}
	if c.dbSlot >= 0 {
		return isa.Event{Kind: isa.EvDataBreak, Slot: c.dbSlot, Access: c.dbAccess, BreakAddr: c.dbAddr}
	}
	return isa.Event{}
}

func (c *toyCore) watchData(addr uint32, access isa.DataAccess) {
	if c.dbSlot < 0 && c.debug.Armed(isa.BreakData) {
		if s := c.debug.HitData(addr, 4); s >= 0 {
			c.dbSlot, c.dbAccess, c.dbAddr = s, access, addr
		}
	}
}

func (c *toyCore) RunUntil(limit uint64) isa.Event {
	for c.clk.Cycles() < limit {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return ev
		}
	}
	return isa.Event{}
}

func (c *toyCore) PC() uint32              { return c.pc }
func (c *toyCore) SetPC(v uint32)          { c.pc = v }
func (c *toyCore) SP() uint32              { return c.r[7] }
func (c *toyCore) SetSP(v uint32)          { c.r[7] = v }
func (c *toyCore) Mode() isa.Mode          { return isa.KernelMode }
func (c *toyCore) InterruptsEnabled() bool { return false }

func (c *toyCore) InstallBootState(platform.BootState) {}
func (c *toyCore) VetDelivery() platform.Delivery      { return platform.Delivery{} }

func (c *toyCore) DeliverInterrupt(handler, ksp uint32) isa.Event {
	// Unreachable: interrupts are permanently disabled.
	return isa.Event{Kind: isa.EvException, Cause: toyCauseIllegal}
}

func (c *toyCore) SetSyscallResult(v uint32) { c.r[1] = v }

func (c *toyCore) SyscallArgs() (uint32, uint32, uint32) {
	return c.r[1], c.r[2], c.r[3]
}

func (c *toyCore) SystemRegisters() []platform.SysReg {
	return []platform.SysReg{{
		Name: "CTL", Bits: 32,
		Get: func() uint32 { return c.ctl },
		Set: func(v uint32) { c.ctl = v },
	}}
}

// Context primitives: 8 GPRs + PC. Unused by the mini-campaigns (the toy
// kernel never context-switches) but implemented for completeness.
func (c *toyCore) CtxWords() int { return 9 }

func (c *toyCore) SaveContext(addr uint32) {
	for i, v := range c.r {
		c.mem.RawWrite(addr+uint32(i)*4, 4, v)
	}
	c.mem.RawWrite(addr+32, 4, c.pc)
}

func (c *toyCore) RestoreContext(addr uint32) {
	for i := range c.r {
		c.r[i] = c.mem.RawRead(addr+uint32(i)*4, 4)
	}
	c.pc = c.mem.RawRead(addr+32, 4)
}

func (c *toyCore) InitContext(addr, entry, sp uint32, user bool) {
	for i := 0; i < 9; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, 0)
	}
	c.mem.RawWrite(addr+28, 4, sp) // r7
	c.mem.RawWrite(addr+32, 4, entry)
}

func (c *toyCore) CtxSPOffset() uint32          { return 28 }
func (c *toyCore) CtxModeUser(addr uint32) bool { return false }

func (c *toyCore) SetStackBounds(lo, hi uint32) {}
func (c *toyCore) StackPointerInBounds() bool   { return true }
func (c *toyCore) CrashDumpPossible() bool      { return true }

func (c *toyCore) BeginCall(entry uint32, args []uint32) {
	for i, v := range args {
		c.r[1+i] = v
	}
	c.pc = entry
}

func (c *toyCore) CallDone(nargs int) (uint32, bool) {
	if c.pc != platform.CallSentinel {
		return 0, false
	}
	return c.r[1], true
}

func (c *toyCore) SaveCPUState() platform.CPUState {
	return &toyState{
		R: c.r, PC: c.pc, CTL: c.ctl,
		Debug: c.debug.Slots(), Clock: c.clk.State(),
		PendingSlot: c.dbSlot, PendingAccess: c.dbAccess, PendingAddr: c.dbAddr,
	}
}

func (c *toyCore) RestoreCPUState(st platform.CPUState) error {
	s, ok := st.(*toyState)
	if !ok {
		return fmt.Errorf("toy: restoring %T onto a toy core", st)
	}
	c.r, c.pc, c.ctl = s.R, s.PC, s.CTL
	c.debug.SetSlots(s.Debug)
	c.clk.SetState(s.Clock)
	c.dbSlot, c.dbAccess, c.dbAddr = s.PendingSlot, s.PendingAccess, s.PendingAddr
	return nil
}

func (c *toyCore) DisasmAt(pc uint32) string {
	bs := c.mem.RawBytes(pc, 2)
	if bs == nil {
		return "<unmapped>"
	}
	return fmt.Sprintf(".toy 0x%02x%02x", bs[0], bs[1])
}

func (c *toyCore) Clock() *isa.CycleCounter { return &c.clk }
func (c *toyCore) Debug() *isa.DebugUnit    { return &c.debug }

func (c *toyCore) SetTrace(fn func(pc uint32, cost uint8)) { c.trace = fn }

func (c *toyCore) PendingDataBreak() (int, isa.DataAccess, uint32, bool) {
	if c.dbSlot < 0 {
		return 0, 0, 0, false
	}
	slot, access, addr := c.dbSlot, c.dbAccess, c.dbAddr
	c.dbSlot = -1
	return slot, access, addr, true
}

// toyState is the toy CPU checkpoint, wire-codable through the shared
// snapshot cursors like the built-in platforms' states.
type toyState struct {
	R   [8]uint32
	PC  uint32
	CTL uint32

	Debug         [isa.DebugSlots]isa.Breakpoint
	Clock         isa.ClockState
	PendingSlot   int
	PendingAccess isa.DataAccess
	PendingAddr   uint32
}

func (s *toyState) EncodeSnapshot(w *platform.SnapWriter) {
	for _, r := range s.R {
		w.U32(r)
	}
	w.U32(s.PC)
	w.U32(s.CTL)
	w.CPUTail(s.Debug, s.Clock, s.PendingSlot, s.PendingAccess, s.PendingAddr)
}

func (s *toyState) DecodeSnapshot(r *platform.SnapReader) {
	for i := range s.R {
		s.R[i] = r.U32()
	}
	s.PC = r.U32()
	s.CTL = r.U32()
	r.CPUTail(&s.Debug, &s.Clock, &s.PendingSlot, &s.PendingAccess, &s.PendingAddr)
}
