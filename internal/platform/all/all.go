// Package all registers every built-in platform descriptor. Import it for
// side effects from binaries and helpers that resolve platforms by name:
//
//	import _ "kfi/internal/platform/all"
//
// Packages that construct machines directly get the registrations
// transitively (internal/machine imports both ISA packages).
package all

import (
	_ "kfi/internal/cisc"
	_ "kfi/internal/risc"
)
