package core_test

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"kfi/internal/core"
	"kfi/internal/inject"
	"kfi/internal/isa"
)

func smallStudy(t *testing.T) *core.StudyResult {
	t.Helper()
	study, err := core.Run(core.Config{
		Seed: 11,
		Counts: map[inject.Campaign]int{
			inject.CampStack:  8,
			inject.CampSysReg: 8,
			inject.CampData:   8,
			inject.CampCode:   8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return study
}

func TestStudyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	study := smallStudy(t)
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		pr := study.PerPlatform[p]
		if pr == nil {
			t.Fatalf("no results for %v", p)
		}
		if pr.Golden == 0 {
			t.Errorf("[%v] zero golden checksum", p)
		}
		for _, c := range core.Campaigns {
			oc := pr.Outcomes[c]
			if oc == nil {
				t.Fatalf("[%v] missing campaign %v", p, c)
			}
			if oc.Counts.Injected != 8 {
				t.Errorf("[%v/%v] injected %d, want 8", p, c, oc.Counts.Injected)
			}
		}
	}
	// Both platforms must agree on the golden checksum (the workload is
	// architecture-independent by construction).
	if study.PerPlatform[isa.CISC].Golden != study.PerPlatform[isa.RISC].Golden {
		t.Errorf("platform goldens differ: 0x%x vs 0x%x",
			study.PerPlatform[isa.CISC].Golden, study.PerPlatform[isa.RISC].Golden)
	}
}

func TestStudyRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	study := smallStudy(t)
	table := study.Table(isa.CISC)
	for _, want := range []string{"Stack", "System Registers", "Data", "Code", "Total"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if fig := study.CauseFigure(isa.RISC, 0); !strings.Contains(fig, "Overall") {
		t.Errorf("overall figure: %q", fig)
	}
	if fig := study.CauseFigure(isa.RISC, inject.CampCode); !strings.Contains(fig, "Code") {
		t.Errorf("campaign figure: %q", fig)
	}
	lat := study.LatencyFigure(inject.CampCode)
	for _, want := range []string{"<3k", "P4-class", "G4-class", "crashes"} {
		if !strings.Contains(lat, want) {
			t.Errorf("latency figure missing %q:\n%s", want, lat)
		}
	}
}

func TestPaperFractionScalesCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	study, err := core.Run(core.Config{
		Platforms:     []isa.Platform{isa.CISC},
		Campaigns:     []inject.Campaign{inject.CampCode},
		PaperFraction: 0.005, // 1790 * 0.005 ≈ 8
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := study.PerPlatform[isa.CISC].Outcomes[inject.CampCode].Counts.Injected
	if got != 8 {
		t.Errorf("paper-fraction count = %d, want 8", got)
	}
}

func TestPaperCountsMatchPaperTotals(t *testing.T) {
	var p4, g4 int
	for _, n := range core.PaperCounts[isa.CISC] {
		p4 += n
	}
	for _, n := range core.PaperCounts[isa.RISC] {
		g4 += n
	}
	if p4 != 61799 {
		t.Errorf("P4 total = %d, want 61799 (Table 5)", p4)
	}
	if g4 != 55172 {
		t.Errorf("G4 total = %d, want 55172 (Table 6)", g4)
	}
	if p4+g4 < 115_000 {
		t.Errorf("study total = %d, want the paper's >115,000", p4+g4)
	}
}

func TestBuildSystemScaleValidation(t *testing.T) {
	sys, err := core.BuildSystem(isa.CISC, core.BuildOptions{Scale: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Golden == 0 || sys.Profile.Total == 0 {
		t.Error("defaulted scale produced an empty system")
	}
}

func TestRunCampaignOnReusesSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	system, err := core.BuildSystem(isa.CISC, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two campaigns against the same pre-built system — the benchmark
	// harness path — must produce full, independent outcome sets.
	oc1, err := core.RunCampaignOn(system, inject.CampCode, 6, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	oc2, err := core.RunCampaignOn(system, inject.CampStack, 6, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oc1.Counts.Injected != 6 || oc2.Counts.Injected != 6 {
		t.Errorf("injected %d / %d, want 6 each", oc1.Counts.Injected, oc2.Counts.Injected)
	}
	if oc1.Spec.Campaign != inject.CampCode || oc2.Spec.Campaign != inject.CampStack {
		t.Errorf("campaign labels %v / %v", oc1.Spec.Campaign, oc2.Spec.Campaign)
	}
	// Determinism across a reused image: same spec, same outcome sequence.
	oc3, err := core.RunCampaignOn(system, inject.CampCode, 6, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oc1.Results {
		if oc1.Results[i].Outcome != oc3.Results[i].Outcome {
			t.Fatalf("rerun diverged at injection %d: %v vs %v",
				i, oc1.Results[i].Outcome, oc3.Results[i].Outcome)
		}
	}
}

func TestSensitiveRegistersOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	study, err := core.Run(core.Config{
		Seed:      888,
		Campaigns: []inject.Campaign{inject.CampSysReg},
		Counts:    map[inject.Campaign]int{inject.CampSysReg: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		regs := study.SensitiveRegisters(p)
		seen := make(map[string]bool)
		for _, r := range regs {
			if r == "" {
				t.Errorf("[%v] empty register name", p)
			}
			if seen[r] {
				t.Errorf("[%v] duplicate register %q", p, r)
			}
			seen[r] = true
		}
	}
	// A study without a register campaign reports none.
	empty, err := core.Run(core.Config{
		Seed:      1,
		Campaigns: []inject.Campaign{inject.CampCode},
		Counts:    map[inject.Campaign]int{inject.CampCode: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.SensitiveRegisters(isa.CISC); got != nil {
		t.Errorf("no sysreg campaign but SensitiveRegisters = %v", got)
	}
}

func TestBuildOptionsOverridesPlumbed(t *testing.T) {
	if testing.Short() {
		t.Skip("builds systems")
	}
	// A tiny watchdog must hang every run long before completion.
	sys, err := core.BuildSystem(isa.CISC, core.BuildOptions{Watchdog: 1})
	if err == nil {
		_ = sys
		t.Fatal("golden run under a 1-cycle watchdog should fail system build")
	}
	// A generous override still builds and completes.
	sys, err = core.BuildSystem(isa.CISC, core.BuildOptions{
		Watchdog:    200_000_000,
		TimerPeriod: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Golden == 0 {
		t.Error("no golden checksum under overridden timer")
	}
}

// TestStudyJournalAndResume drives the journal wiring end to end through the
// study layer: a journaled study writes one journal per platform+campaign,
// and a resumed study with fully-populated journals reuses every recorded
// outcome (bit-identical results, zero re-execution) — while a journal
// written by a different study is rejected, not spliced in.
func TestStudyJournalAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()
	cfg := core.Config{
		Platforms:  []isa.Platform{isa.CISC},
		Campaigns:  []inject.Campaign{inject.CampStack},
		Counts:     map[inject.Campaign]int{inject.CampStack: 8},
		Seed:       11,
		JournalDir: dir,
	}
	first, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := core.JournalPath(dir, isa.CISC, inject.CampStack)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	// Resume with every outcome already journaled: the study must reuse
	// them verbatim without re-running a single injection (the progress
	// callback only ever reports journaled completions).
	cfg.Resume = true
	resumed, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := first.PerPlatform[isa.CISC].Outcomes[inject.CampStack].Results
	b := resumed.PerPlatform[isa.CISC].Outcomes[inject.CampStack].Results
	if !reflect.DeepEqual(a, b) {
		t.Fatal("resumed study results differ from the journaled originals")
	}

	// A different seed describes different experiments: the resume must
	// refuse the on-disk journal instead of silently reusing it.
	cfg.Seed = 12
	if _, err := core.Run(cfg); err == nil {
		t.Fatal("resume accepted a journal from a different study")
	}
}
