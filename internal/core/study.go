// Package core orchestrates the paper's measurement study: it builds the two
// guest systems (P4-class and G4-class) running the same kernel and
// benchmark, executes the four injection campaigns on each, and renders the
// paper's tables and figures from the collected outcomes. This is the
// top-level engine behind the public kfi API, the command-line tools, and
// the benchmark harness.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kfi/internal/campaign"
	"kfi/internal/cc"
	"kfi/internal/crashnet"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/kir"
	"kfi/internal/platform"
	"kfi/internal/stats"
	"kfi/internal/workload"
)

// System bundles a bootable guest with its golden checksum and kernel
// profile.
type System struct {
	Sys     *kernel.System
	Golden  uint32
	Profile *campaign.Profile
}

// BuildOptions tune system construction.
type BuildOptions struct {
	// Scale multiplies the benchmark's inner loops (1 = standard).
	Scale int
	// CrashSender optionally receives crash packets (remote collection).
	CrashSender crashnet.Sender
	// TimerPeriod and Watchdog override the machine defaults when nonzero.
	TimerPeriod uint64
	Watchdog    uint64
	// Kernel selects kernel build variants (ablation studies).
	Kernel kernel.ProgOptions
	// NoStackWrapper disables the G4 overflow check (ablation).
	NoStackWrapper bool
	// Harden applies the software fault-detection transforms to the kernel
	// image (the workload stays unhardened). Zero value: the paper-faithful
	// unhardened build, byte-identical to builds that predate hardening.
	Harden kir.HardenOpts
}

// BuildSystem compiles kernel + workload for the platform, boots, seals,
// measures the golden checksum, and profiles kernel usage.
func BuildSystem(platform isa.Platform, opts BuildOptions) (*System, error) {
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	uimg, err := cc.Compile(workload.Program(opts.Scale), platform, kernel.UserBases)
	if err != nil {
		return nil, fmt.Errorf("core: compile workload: %w", err)
	}
	sys, err := kernel.BuildSystem(platform, uimg, workload.StandardProcs(), kernel.Options{
		TimerPeriod:    opts.TimerPeriod,
		Watchdog:       opts.Watchdog,
		CrashSender:    opts.CrashSender,
		Prog:           opts.Kernel,
		NoStackWrapper: opts.NoStackWrapper,
		Harden:         opts.Harden,
	})
	if err != nil {
		return nil, err
	}
	golden, err := campaign.Golden(sys)
	if err != nil {
		return nil, err
	}
	profile, err := campaign.ProfileKernel(sys)
	if err != nil {
		return nil, err
	}
	return &System{Sys: sys, Golden: golden, Profile: profile}, nil
}

// Campaigns in the paper's table order.
var Campaigns = []inject.Campaign{
	inject.CampStack, inject.CampSysReg, inject.CampData, inject.CampCode,
}

// PaperCounts are the paper's per-campaign injection counts (Tables 5-6).
var PaperCounts = map[isa.Platform]map[inject.Campaign]int{
	isa.CISC: {
		inject.CampStack: 10143, inject.CampSysReg: 3866,
		inject.CampData: 46000, inject.CampCode: 1790,
	},
	isa.RISC: {
		inject.CampStack: 3017, inject.CampSysReg: 3967,
		inject.CampData: 46000, inject.CampCode: 2188,
	},
}

// Config describes a full study.
type Config struct {
	Platforms []isa.Platform
	Campaigns []inject.Campaign
	// Counts gives per-campaign injection counts; when nil, DefaultCounts
	// are used. PaperFraction (when > 0) instead scales the paper's own
	// campaign sizes, preserving their relative proportions.
	Counts        map[inject.Campaign]int
	PaperFraction float64
	Seed          int64
	Build         BuildOptions
	// Burst widens the error model: 0 or 1 is the paper's single-bit flip,
	// k > 1 flips k adjacent bits per injection.
	Burst uint8
	// Exec selects the campaign execution mode (zero value: fork-from-golden
	// snapshot scheduling; Replay forces per-injection reboot-and-replay) and
	// the per-injection supervision policy.
	Exec campaign.ExecOptions
	// JournalDir, when set, durably journals every completed outcome to one
	// append-only file per (platform, campaign) under this directory, so an
	// interrupted study can be resumed.
	JournalDir string
	// Resume reopens existing journals under JournalDir and skips the
	// injections they already record, continuing each campaign bit-identically
	// where the interrupted run stopped. Campaigns without a journal (or with
	// an empty one) simply start from the beginning.
	Resume bool
	// Nodes runs each platform's campaigns on a farm of this many identical
	// guest systems (0 or 1: a single system). Per-index results are
	// identical to a single-node run of the same seed; only wall-clock
	// changes.
	Nodes int
	// Progress, when set, receives per-injection progress.
	Progress func(p isa.Platform, c inject.Campaign, done, total int)
}

// DefaultCounts balance statistical usefulness against runtime.
var DefaultCounts = map[inject.Campaign]int{
	inject.CampStack:  300,
	inject.CampSysReg: 300,
	inject.CampData:   500,
	inject.CampCode:   300,
}

// CampaignOutcome is one campaign's collected results and summaries.
type CampaignOutcome struct {
	Spec    campaign.Spec
	Counts  stats.Counts
	Causes  stats.CauseDist
	Latency stats.LatencyHist
	Results []inject.Result
	// Engine is the execution engine the campaign ran on; EngineStats are
	// its observability counters (internal/platform.EngineStats).
	Engine      platform.EngineKind
	EngineStats platform.EngineStats
}

// PlatformResult holds one platform's campaigns.
type PlatformResult struct {
	Platform isa.Platform
	Golden   uint32
	Outcomes map[inject.Campaign]*CampaignOutcome
}

// StudyResult is the full cross-platform study.
type StudyResult struct {
	PerPlatform map[isa.Platform]*PlatformResult
}

// Run executes the configured study.
func Run(cfg Config) (*StudyResult, error) {
	if len(cfg.Platforms) == 0 {
		cfg.Platforms = []isa.Platform{isa.CISC, isa.RISC}
	}
	if len(cfg.Campaigns) == 0 {
		cfg.Campaigns = Campaigns
	}
	out := &StudyResult{PerPlatform: make(map[isa.Platform]*PlatformResult)}
	for _, p := range cfg.Platforms {
		var (
			system *System
			farm   *campaign.Farm
			golden uint32
			err    error
		)
		if cfg.Nodes > 1 {
			farm, err = campaign.NewFarm(p, cfg.Nodes, cfg.Build.Scale, kernel.Options{
				TimerPeriod:    cfg.Build.TimerPeriod,
				Watchdog:       cfg.Build.Watchdog,
				CrashSender:    cfg.Build.CrashSender,
				Prog:           cfg.Build.Kernel,
				NoStackWrapper: cfg.Build.NoStackWrapper,
				Harden:         cfg.Build.Harden,
			})
			if err == nil {
				golden = farm.Golden()
			}
		} else {
			system, err = BuildSystem(p, cfg.Build)
			if err == nil {
				golden = system.Golden
			}
		}
		if err != nil {
			return nil, err
		}
		pr := &PlatformResult{Platform: p, Golden: golden,
			Outcomes: make(map[inject.Campaign]*CampaignOutcome)}
		out.PerPlatform[p] = pr
		for _, c := range cfg.Campaigns {
			n := cfg.Counts[c]
			if n == 0 && cfg.PaperFraction > 0 {
				n = int(float64(PaperCounts[p][c]) * cfg.PaperFraction)
				if n < 1 {
					n = 1
				}
			}
			if n == 0 {
				n = DefaultCounts[c]
			}
			var progress func(done, total int)
			if cfg.Progress != nil {
				p, c := p, c
				progress = func(done, total int) { cfg.Progress(p, c, done, total) }
			}
			spec := campaign.Spec{Campaign: c, N: n, Seed: SpecSeed(cfg.Seed, p, c),
				Burst: cfg.Burst}
			exec, err := openJournal(cfg, p, golden, spec)
			if err != nil {
				return nil, err
			}
			var res *campaign.Result
			if farm != nil {
				res, err = farm.RunWith(spec, progress, exec)
			} else {
				res, err = campaign.RunWith(system.Sys, system.Golden, system.Profile,
					spec, progress, exec)
			}
			if exec.Journal != nil {
				if cerr := exec.Journal.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return nil, err
			}
			pr.Outcomes[c] = summarize(res)
		}
	}
	return out, nil
}

// SpecSeed derives the per-(platform, campaign) target-generation seed from
// a study's base seed. Every execution mode — single system, in-process
// farm, or a ctlplane submission — must use this same derivation for its
// outcome tables to be comparable injection-for-injection.
func SpecSeed(base int64, p isa.Platform, c inject.Campaign) int64 {
	return base + int64(c)*1000 + int64(p)
}

// JournalPath returns the journal file used for one (platform, campaign)
// under a journal directory.
func JournalPath(dir string, p isa.Platform, c inject.Campaign) string {
	slug := strings.ReplaceAll(strings.ToLower(c.String()), " ", "-")
	return filepath.Join(dir, fmt.Sprintf("%s-%s.kjournal", strings.ToLower(p.Short()), slug))
}

// openJournal attaches the campaign's journal to the execution options:
// freshly created, or — with Resume — reopened with its completed outcomes
// loaded for skipping. A header mismatch (the journal on disk describes
// different experiments than this run) is an error, never silently ignored.
func openJournal(cfg Config, p isa.Platform, golden uint32, spec campaign.Spec) (campaign.ExecOptions, error) {
	exec := cfg.Exec
	if cfg.JournalDir == "" {
		return exec, nil
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return exec, err
	}
	path := JournalPath(cfg.JournalDir, p, spec.Campaign)
	h := campaign.HeaderFor(p, golden, spec)
	h.Prune = cfg.Exec.Prune
	h.Cached = cfg.Exec.SectionCache != ""
	if cfg.Exec.Engine != 0 {
		h.Engine = cfg.Exec.Engine.String()
	}
	if cfg.Build.Harden.Enabled() {
		h.Harden = cfg.Build.Harden.String()
	}
	if cfg.Resume {
		j, completed, err := campaign.ResumeJournal(path, h)
		if err != nil {
			return exec, err
		}
		exec.Journal, exec.Completed = j, completed
		return exec, nil
	}
	j, err := campaign.CreateJournal(path, h)
	if err != nil {
		return exec, err
	}
	exec.Journal = j
	return exec, nil
}

// RunCampaignOn executes a single campaign on a pre-built system (the
// benchmark harness path, which reuses systems across campaigns).
func RunCampaignOn(system *System, camp inject.Campaign, n int, seed int64,
	progress func(done, total int)) (*CampaignOutcome, error) {
	return RunCampaignOnWith(system, camp, n, seed, progress, campaign.ExecOptions{})
}

// RunCampaignOnWith is RunCampaignOn with explicit execution options.
func RunCampaignOnWith(system *System, camp inject.Campaign, n int, seed int64,
	progress func(done, total int), exec campaign.ExecOptions) (*CampaignOutcome, error) {
	res, err := campaign.RunWith(system.Sys, system.Golden, system.Profile,
		campaign.Spec{Campaign: camp, N: n, Seed: seed}, progress, exec)
	if err != nil {
		return nil, err
	}
	return summarize(res), nil
}

func summarize(res *campaign.Result) *CampaignOutcome {
	return &CampaignOutcome{
		Spec:        res.Spec,
		Counts:      stats.Summarize(res.Results),
		Causes:      stats.CrashCauses(res.Results),
		Latency:     stats.Latencies(res.Results),
		Results:     res.Results,
		Engine:      res.Engine,
		EngineStats: res.EngineStats,
	}
}

// Table renders a platform's campaign table in the shape of the paper's
// Tables 5 and 6.
func (r *StudyResult) Table(p isa.Platform) string {
	pr := r.PerPlatform[p]
	if pr == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v — Statistics on Error Activation and Failure Distribution\n", p)
	b.WriteString(stats.TableHeader() + "\n")
	total := 0
	for _, c := range Campaigns {
		oc := pr.Outcomes[c]
		if oc == nil {
			continue
		}
		b.WriteString(oc.Counts.TableRow(c.String()) + "\n")
		total += oc.Counts.Injected
	}
	fmt.Fprintf(&b, "%-18s %8d\n", "Total", total)
	return b.String()
}

// OverallCauses merges the crash causes of every campaign (Figures 4/5).
func (r *StudyResult) OverallCauses(p isa.Platform) stats.CauseDist {
	pr := r.PerPlatform[p]
	merged := stats.CauseDist{Counts: map[isa.CrashCause]int{}}
	if pr == nil {
		return merged
	}
	for _, c := range Campaigns {
		if oc := pr.Outcomes[c]; oc != nil {
			merged = merged.Merge(oc.Causes)
		}
	}
	return merged
}

// CauseFigure renders a crash-cause distribution figure for one campaign
// (or the overall distribution when camp is 0).
func (r *StudyResult) CauseFigure(p isa.Platform, camp inject.Campaign) string {
	var (
		d     stats.CauseDist
		title string
	)
	if camp == 0 {
		d = r.OverallCauses(p)
		title = fmt.Sprintf("Overall Distribution of Crash Causes (%v)", p)
	} else {
		pr := r.PerPlatform[p]
		if pr == nil || pr.Outcomes[camp] == nil {
			return ""
		}
		d = pr.Outcomes[camp].Causes
		title = fmt.Sprintf("Crash Causes for %v Injection (%v)", camp, p)
	}
	return title + "\n" + d.Render(p)
}

// LatencyFigure renders a Figure 16 panel: the cycles-to-crash distribution
// of one campaign on both platforms, side by side.
func (r *StudyResult) LatencyFigure(camp inject.Campaign) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cycles-to-Crash, %v Injection\n", camp)
	fmt.Fprintf(&b, "  %-9s %10s %10s\n", "bucket", "P4-class", "G4-class")
	var hists [2]stats.LatencyHist
	for i, p := range []isa.Platform{isa.CISC, isa.RISC} {
		if pr := r.PerPlatform[p]; pr != nil && pr.Outcomes[camp] != nil {
			hists[i] = pr.Outcomes[camp].Latency
		}
	}
	for i, label := range stats.BucketLabels {
		fmt.Fprintf(&b, "  %-9s %9.1f%% %9.1f%%\n", label, hists[0].Pct(i), hists[1].Pct(i))
	}
	fmt.Fprintf(&b, "  %-9s %10d %10d\n", "crashes", hists[0].Total, hists[1].Total)
	return b.String()
}

// SensitiveRegisters lists, per platform, the registers whose corruption
// manifested (the paper: 7 of ~20 on the P4, 15 of 99 on the G4).
func (r *StudyResult) SensitiveRegisters(p isa.Platform) []string {
	pr := r.PerPlatform[p]
	if pr == nil || pr.Outcomes[inject.CampSysReg] == nil {
		return nil
	}
	m := stats.ByRegister(pr.Outcomes[inject.CampSysReg].Results)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if m[names[i]] != m[names[j]] {
			return m[names[i]] > m[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
