package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"kfi/internal/campaign"
	"kfi/internal/cli"
	"kfi/internal/inject"
)

// Client speaks the control-plane protocol to one coordinator. The zero
// value is not usable; build one with NewClient, which validates the base
// URL the same way the CLI flags do.
type Client struct {
	// Base is the coordinator's base URL (no trailing slash).
	Base string
	// HTTP is the transport; NewClient sets a dedicated client rather than
	// the ambient http.DefaultClient so tests (and the lint rule banning
	// default-client use in this package) can rely on injection.
	HTTP *http.Client
}

// NewClient validates and normalizes the coordinator URL and returns a
// client over a fresh transport.
func NewClient(base string) (*Client, error) {
	b, err := cli.ParseCoordinatorURL(base)
	if err != nil {
		return nil, err
	}
	return &Client{Base: b, HTTP: &http.Client{}}, nil
}

// apiError is a non-2xx protocol response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("coordinator: %s (HTTP %d)", e.Msg, e.Status)
}

// do runs one JSON round trip. A nil in sends an empty JSON object so every
// POST has a body; a nil out discards the response body.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if method != http.MethodGet {
		if in == nil {
			in = struct{}{}
		}
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeErr(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if json.Unmarshal(data, &e) != nil || e.Error == "" {
		e.Error = string(bytes.TrimSpace(data))
	}
	return &apiError{Status: resp.StatusCode, Msg: e.Error}
}

// Submit registers a campaign (idempotent: resubmitting a spec addresses
// the existing campaign) and returns its status.
func (c *Client) Submit(spec Spec) (Status, error) {
	var st Status
	err := c.do(http.MethodPost, "/v1/campaigns", spec, &st)
	return st, err
}

// Service fetches the coordinator's full status.
func (c *Client) Service() (ServiceStatus, error) {
	var st ServiceStatus
	err := c.do(http.MethodGet, "/v1/campaigns", nil, &st)
	return st, err
}

// Status fetches one campaign's status.
func (c *Client) Status(id string) (Status, error) {
	var st Status
	err := c.do(http.MethodGet, "/v1/campaigns/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Cancel cancels a campaign and returns its resulting status.
func (c *Client) Cancel(id string) (Status, error) {
	var st Status
	err := c.do(http.MethodPost, "/v1/campaigns/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// Drain tells the coordinator to stop granting leases and returns its
// status; running workers finish their current chunks and exit on their
// next lease poll.
func (c *Client) Drain() (ServiceStatus, error) {
	var st ServiceStatus
	err := c.do(http.MethodPost, "/v1/drain", nil, &st)
	return st, err
}

// Lease requests a chunk of work.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do(http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Heartbeat extends a lease.
func (c *Client) Heartbeat(leaseID, worker string) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.do(http.MethodPost, "/v1/heartbeat",
		HeartbeatRequest{LeaseID: leaseID, Worker: worker}, &resp)
	return resp, err
}

// ReportError reports an unrecoverable campaign error, failing the campaign.
func (c *Client) ReportError(campaignID string, rep ErrorReport) error {
	return c.do(http.MethodPost, "/v1/campaigns/"+url.PathEscape(campaignID)+"/error", rep, nil)
}

// ReportCrash forwards one crashnet report to the coordinator's telemetry.
func (c *Client) ReportCrash(rep CrashReport) error {
	return c.do(http.MethodPost, "/v1/crash", rep, nil)
}

// StreamResults opens a chunked POST of journal-framed outcome rows for a
// leased chunk and calls produce with a send function that frames and ships
// one row. Rows hit the wire as they complete, so the coordinator journals
// progress while the chunk is still running and a worker death costs only
// the unsent remainder. Returns the coordinator's accept/duplicate summary.
func (c *Client) StreamResults(campaignID, leaseID string,
	produce func(send func(idx int, res inject.Result) error) error) (StreamSummary, error) {
	pr, pw := io.Pipe()
	produceErr := make(chan error, 1)
	go func() {
		err := produce(func(idx int, res inject.Result) error {
			payload, err := campaign.EncodeRecord(idx, res)
			if err != nil {
				return err
			}
			_, werr := pw.Write(campaign.Frame(payload))
			return werr
		})
		// Closing with the produce error tears the request body, which the
		// coordinator treats as end-of-stream: rows already sent stay
		// journaled.
		pw.CloseWithError(err)
		produceErr <- err
	}()
	target := c.Base + "/v1/campaigns/" + url.PathEscape(campaignID) +
		"/results?lease=" + url.QueryEscape(leaseID)
	req, err := http.NewRequest(http.MethodPost, target, pr)
	if err != nil {
		pr.CloseWithError(err)
		return StreamSummary{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		<-produceErr
		return StreamSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		herr := decodeErr(resp)
		<-produceErr
		return StreamSummary{}, herr
	}
	var sum StreamSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		<-produceErr
		return StreamSummary{}, err
	}
	return sum, <-produceErr
}

// Results fetches a finished campaign's canonical journal and decodes it
// into its header and outcome table. RawResults returns the bytes
// themselves for byte-identity checks.
func (c *Client) Results(id string) (campaign.Header, map[int]inject.Result, error) {
	data, err := c.RawResults(id)
	if err != nil {
		return campaign.Header{}, nil, err
	}
	return DecodeJournal(data)
}

// RawResults fetches a finished campaign's canonical journal bytes.
func (c *Client) RawResults(id string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet,
		c.Base+"/v1/campaigns/"+url.PathEscape(id)+"/results", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// DecodeJournal parses journal bytes (header frame, then record frames)
// into the header and outcome table.
func DecodeJournal(data []byte) (campaign.Header, map[int]inject.Result, error) {
	fr := campaign.NewFrameReader(bytes.NewReader(data))
	payload, ok := fr.Next()
	if !ok {
		return campaign.Header{}, nil, fmt.Errorf("ctlplane: journal has no header frame")
	}
	var h campaign.Header
	if err := json.Unmarshal(payload, &h); err != nil {
		return campaign.Header{}, nil, fmt.Errorf("ctlplane: bad journal header: %w", err)
	}
	out := make(map[int]inject.Result)
	for {
		payload, ok := fr.Next()
		if !ok {
			return h, out, nil
		}
		idx, res, err := campaign.DecodeRecord(payload)
		if err != nil {
			return h, out, fmt.Errorf("ctlplane: bad journal record: %w", err)
		}
		out[idx] = res
	}
}
