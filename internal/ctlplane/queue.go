package ctlplane

import (
	"fmt"
	"time"
)

// chunkQueue hands out chunks of one campaign's trigger-sorted execution
// order and tracks the leases on them — the farm's steal queue promoted to
// machine scale. Goroutines stealing from a shared queue become workers
// leasing over HTTP; a goroutine's nodeLostError becomes a lease expiring
// after missed heartbeats. Fresh chunks are served in ascending trigger
// order (so each worker's snapshot chain advances forward); the requeued
// remnants of expired leases are served first, exactly like the farm's
// failover remnants.
//
// The queue is not self-locking: the owning campaign's mutex guards it.
type chunkQueue struct {
	pending []chunk
	leases  map[string]*lease
	seq     int
}

// chunk is a contiguous slice of the trigger-sorted execution order.
type chunk struct {
	indices []int
}

// lease is one outstanding grant of a chunk to a worker.
type lease struct {
	id     string
	worker string
	// order preserves the chunk's trigger order for requeue; outstanding
	// tracks which of its indices have not been journaled yet.
	order       []int
	outstanding map[int]bool
	deadline    time.Time
}

func newChunkQueue() *chunkQueue {
	return &chunkQueue{leases: make(map[string]*lease)}
}

// push appends a fresh chunk (ascending trigger order across pushes).
func (q *chunkQueue) push(indices []int) {
	if len(indices) > 0 {
		q.pending = append(q.pending, chunk{indices: indices})
	}
}

// requeue returns an expired lease's unfinished indices to the front of the
// queue, where the next lease request picks them up first.
func (q *chunkQueue) requeue(indices []int) {
	if len(indices) > 0 {
		q.pending = append([]chunk{{indices: indices}}, q.pending...)
	}
}

// grant leases the next chunk to a worker, or returns nil when none is
// pending. campaignID scopes the lease ID so heartbeats and result streams
// for different campaigns can never collide.
func (q *chunkQueue) grant(campaignID, worker string, now time.Time, ttl time.Duration) *lease {
	if len(q.pending) == 0 {
		return nil
	}
	ch := q.pending[0]
	q.pending = q.pending[1:]
	q.seq++
	l := &lease{
		id:          fmt.Sprintf("%s/%d", campaignID, q.seq),
		worker:      worker,
		order:       ch.indices,
		outstanding: make(map[int]bool, len(ch.indices)),
		deadline:    now.Add(ttl),
	}
	for _, i := range ch.indices {
		l.outstanding[i] = true
	}
	q.leases[l.id] = l
	return l
}

// heartbeat extends a live lease; false means the lease is gone (expired
// and requeued, or completed) and the worker should abandon the chunk.
func (q *chunkQueue) heartbeat(leaseID string, now time.Time, ttl time.Duration) bool {
	l, ok := q.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = now.Add(ttl)
	return true
}

// markDone records that a row for idx was journaled under the given lease,
// releasing the lease once its last outstanding index lands. Rows journaled
// under other leases (or no lease) don't touch this bookkeeping — expiry
// requeues only indices nobody journaled, so a duplicate execution is
// possible but a lost index is not.
func (q *chunkQueue) markDone(leaseID string, idx int) {
	l, ok := q.leases[leaseID]
	if !ok {
		return
	}
	delete(l.outstanding, idx)
	if len(l.outstanding) == 0 {
		delete(q.leases, leaseID)
	}
}

// sweep expires every lease whose deadline passed, requeueing its
// unjournaled indices in trigger order. It returns the expired lease IDs.
func (q *chunkQueue) sweep(now time.Time, journaled func(idx int) bool) []string {
	var expired []string
	for id, l := range q.leases {
		if !now.After(l.deadline) {
			continue
		}
		var rem []int
		for _, i := range l.order {
			if l.outstanding[i] && !journaled(i) {
				rem = append(rem, i)
			}
		}
		delete(q.leases, id)
		q.requeue(rem)
		expired = append(expired, id)
	}
	return expired
}

// counts reports the queue's pending and leased chunk counts.
func (q *chunkQueue) counts() (pending, leased int) {
	return len(q.pending), len(q.leases)
}

// idle reports whether nothing is pending or leased.
func (q *chunkQueue) idle() bool {
	return len(q.pending) == 0 && len(q.leases) == 0
}
