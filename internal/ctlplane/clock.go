package ctlplane

import "time"

// Clock is the control plane's only source of wall-clock time. Everything
// time-dependent — lease deadlines, expiry sweeps, heartbeat bookkeeping —
// flows through an injected Clock, so tests drive lease expiry by advancing
// a fake instead of sleeping, and the package stays deterministic under test
// like the guest-deterministic packages (a kfi-lint rule enforces that no
// other ctlplane file reads the wall clock or uses the ambient net/http
// default client/transport).
type Clock interface {
	Now() time.Time
}

// SystemClock is the production Clock.
type SystemClock struct{}

// Now returns the wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }
