package ctlplane

import (
	"bytes"
	"strings"
	"testing"

	"kfi/internal/campaign"
	"kfi/internal/core"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kir"
)

func TestSpecResolveValidation(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{name: "valid", spec: Spec{Platform: "p4", Campaign: "stack", N: 5}},
		{name: "alias platform", spec: Spec{Platform: "G4", Campaign: "code", N: 1}},
		{name: "alias campaign", spec: Spec{Platform: "p4", Campaign: "system-registers", N: 2}},
		{name: "unknown platform", spec: Spec{Platform: "vax", Campaign: "stack", N: 5}, wantErr: true},
		{name: "unknown campaign", spec: Spec{Platform: "p4", Campaign: "paging", N: 5}, wantErr: true},
		{name: "zero n", spec: Spec{Platform: "p4", Campaign: "stack", N: 0}, wantErr: true},
		{name: "burst too wide", spec: Spec{Platform: "p4", Campaign: "stack", N: 5, Burst: 9}, wantErr: true},
		{name: "negative retries", spec: Spec{Platform: "p4", Campaign: "stack", N: 5, Retries: -1}, wantErr: true},
		{name: "hardened", spec: Spec{Platform: "p4", Campaign: "stack", N: 5, Harden: "dup+cfsig"}},
		{name: "unknown harden pass", spec: Spec{Platform: "p4", Campaign: "stack", N: 5, Harden: "tmr"}, wantErr: true},
	}
	for _, c := range cases {
		_, err := c.spec.Resolve()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: Resolve() err = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestSpecIDIdentity: the campaign ID is a pure function of the spec, stable
// across name aliases, and distinct for any field change — it is the key the
// journal and idempotent resubmission hang off.
func TestSpecIDIdentity(t *testing.T) {
	base := Spec{Platform: "p4", Campaign: "sysreg", N: 100, Seed: 42}
	id1, err := base.ID()
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := base.ID()
	if id1 != id2 {
		t.Fatalf("ID not deterministic: %s vs %s", id1, id2)
	}
	// Aliases resolve before hashing: "registers" names the same campaign.
	alias := base
	alias.Campaign = "registers"
	alias.Platform = "P4"
	if idA, _ := alias.ID(); idA != id1 {
		t.Errorf("alias spec got a different ID: %s vs %s", idA, id1)
	}
	if !strings.HasPrefix(id1, "p4-system-registers-") {
		t.Errorf("ID %q lacks the human-readable platform-campaign prefix", id1)
	}
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.N++ },
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Burst = 2 },
		func(s *Spec) { s.Scale = 2 },
		func(s *Spec) { s.Retries = 5 },
		func(s *Spec) { s.Platform = "g4" },
		func(s *Spec) { s.Campaign = "data" },
		func(s *Spec) { s.Harden = "dup" },
		func(s *Spec) { s.Harden = "dup+cfsig" },
	} {
		m := base
		mut(&m)
		if idM, err := m.ID(); err != nil || idM == id1 {
			t.Errorf("mutated spec %+v: ID %s (err %v) collides with base", m, idM, err)
		}
	}
	if _, err := (Spec{Platform: "vax", Campaign: "stack", N: 1}).ID(); err == nil {
		t.Error("ID() of an unresolvable spec succeeded")
	}
}

// TestSpecForMatchesStudySeeds: -submit derives the same per-(platform,
// campaign) seed a local kfi-campaign run would use, so a submitted study
// and a local study inject identical targets.
func TestSpecForMatchesStudySeeds(t *testing.T) {
	for _, p := range []isa.Platform{isa.CISC, isa.RISC} {
		for _, c := range []inject.Campaign{inject.CampStack, inject.CampSysReg, inject.CampData, inject.CampCode} {
			spec := SpecFor(p, c, 50, 7, 1, 1, 0, kir.HardenOpts{}, 0)
			if spec.Seed != core.SpecSeed(7, p, c) {
				t.Errorf("%v %v: seed %d, want %d", p, c, spec.Seed, core.SpecSeed(7, p, c))
			}
			res, err := spec.Resolve()
			if err != nil {
				t.Fatalf("%v %v: SpecFor produced an unresolvable spec: %v", p, c, err)
			}
			if res.Platform != p || res.Spec.Campaign != c || res.Spec.N != 50 {
				t.Errorf("%v %v: resolved to %+v", p, c, res)
			}
		}
	}
}

func TestSortStatuses(t *testing.T) {
	list := []Status{
		{ID: "b", State: StateDone},
		{ID: "c", State: StateRunning},
		{ID: "a", State: StateFailed},
		{ID: "d", State: StateQueued},
	}
	SortStatuses(list)
	got := []string{list[0].ID, list[1].ID, list[2].ID, list[3].ID}
	want := []string{"c", "d", "a", "b"} // active first, then terminal, ID order within
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", got, want)
		}
	}
}

// TestStreamFrameRoundTrip: rows framed for the wire decode back through the
// same codec the journal uses, and DecodeJournal reassembles a canonical
// journal's header and table.
func TestStreamFrameRoundTrip(t *testing.T) {
	rows := map[int]inject.Result{
		0: {Outcome: inject.ONotManifested, Activated: true, ActivationKnown: true},
		3: {Outcome: inject.OCrash, Cause: isa.CauseBadArea, Latency: 1234, Activated: true, ActivationKnown: true},
		7: {Outcome: inject.ONotActivated},
	}
	var wire bytes.Buffer
	for idx, r := range rows {
		payload, err := campaign.EncodeRecord(idx, r)
		if err != nil {
			t.Fatal(err)
		}
		wire.Write(campaign.Frame(payload))
	}
	fr := campaign.NewFrameReader(&wire)
	got := map[int]inject.Result{}
	for {
		payload, ok := fr.Next()
		if !ok {
			break
		}
		idx, r, err := campaign.DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		got[idx] = r
	}
	if len(got) != len(rows) {
		t.Fatalf("round-tripped %d rows, want %d", len(got), len(rows))
	}
	for idx, want := range rows {
		if got[idx] != want {
			t.Errorf("idx %d: %+v, want %+v", idx, got[idx], want)
		}
	}

	// A torn trailing frame damages only itself: rows before it survive.
	var torn bytes.Buffer
	p0, _ := campaign.EncodeRecord(1, inject.Result{Outcome: inject.ONotManifested})
	p1, _ := campaign.EncodeRecord(2, inject.Result{Outcome: inject.OFailSilence})
	torn.Write(campaign.Frame(p0))
	full := campaign.Frame(p1)
	torn.Write(full[:len(full)-3])
	fr = campaign.NewFrameReader(&torn)
	n := 0
	for {
		if _, ok := fr.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("torn stream yielded %d frames, want 1 (the intact one)", n)
	}

	// DecodeJournal round-trips CanonicalJournalBytes.
	h := campaign.HeaderFor(isa.CISC, 0xDEADBEEF, campaign.Spec{Campaign: inject.CampData, N: 8, Seed: 3})
	canon, err := campaign.CanonicalJournalBytes(h, rows)
	if err != nil {
		t.Fatal(err)
	}
	h2, table, err := DecodeJournal(canon)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("header round-trip: %+v vs %+v", h2, h)
	}
	if len(table) != len(rows) {
		t.Errorf("table has %d rows, want %d", len(table), len(rows))
	}
	// Canonical bytes are order-independent: re-encoding the decoded table
	// reproduces them exactly.
	again, err := campaign.CanonicalJournalBytes(h2, table)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, again) {
		t.Error("canonical journal bytes are not stable across decode/encode")
	}
}
