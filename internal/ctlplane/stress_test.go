package ctlplane

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kfi/internal/inject"
)

// TestStressWorkersDieAndCoordinatorRestarts is the control plane's
// flextape: a fleet of in-process workers churns through a mini-campaign on
// the smallest real platform while the harness injects the failures the
// subsystem exists to survive — two workers die mid-chunk (one of them
// holding rows it already streamed), and the coordinator itself is torn
// down mid-campaign and rebuilt over the same journal directory behind the
// same URL. The surviving fleet must finish the campaign, and the final
// outcome table must be byte-identical to an in-process farm run of the
// same spec.
//
// Real time is used (system clock, short lease TTL) because the point is
// the integration of all the moving parts; the deterministic lease-machine
// behavior is pinned separately with a fake clock in coordinator_test.go.
func TestStressWorkersDieAndCoordinatorRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: several guest builds and a multi-second campaign")
	}
	dir := t.TempDir()
	const (
		leaseTTL = 400 * time.Millisecond
		nWorkers = 4
		nInject  = 60
	)
	cfg := Config{JournalDir: dir, LeaseTTL: leaseTTL, ChunkSize: 3}

	// The coordinator sits behind a swappable handler, so "restart" is a
	// fresh Coordinator instance (reloaded purely from the journal dir)
	// appearing at the same URL — exactly what workers would see across a
	// real process restart behind a stable address.
	var handler atomic.Value // *Coordinator
	coord1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handler.Store(coord1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(*Coordinator).ServeHTTP(w, r)
	}))
	defer srv.Close()
	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	spec := testSpec(inject.CampData, nInject, 11)
	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The fleet. Workers 0 and 1 are doomed: each dies (stops polling and
	// abandons its lease mid-stream) after streaming a few rows, leaving a
	// half-journaled chunk for lease expiry to recover.
	var (
		workers  [nWorkers]*Worker
		rowCount [nWorkers]atomic.Int64
		wg       sync.WaitGroup
	)
	for i := range nWorkers {
		i := i
		wcfg := WorkerConfig{
			Coordinator:  srv.URL,
			Name:         fmt.Sprintf("stress-w%d", i),
			PollInterval: 20 * time.Millisecond,
		}
		if i < 2 {
			deathRow := int64(4 + 3*i)
			wcfg.rowFault = func(campaignID string, idx int) error {
				if rowCount[i].Add(1) >= deathRow {
					workers[i].Stop()
					return fmt.Errorf("injected death of worker %d at row %d", i, idx)
				}
				return nil
			}
		}
		w, err := NewWorker(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	for i := range nWorkers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := workers[i].Run(); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}

	// Once the campaign is visibly under way, restart the coordinator.
	waitStatus(t, client, sub.ID, "mid-campaign progress",
		func(st Status) bool {
			return st.State == StateDone || (st.State == StateRunning && st.Done >= nInject/4)
		})
	coord1.Close()
	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	handler.Store(coord2)

	st := waitStatus(t, client, sub.ID, "done after restart",
		func(st Status) bool { return st.State == StateDone })
	if st.Done != nInject {
		t.Fatalf("final status %+v, want %d/%d", st, nInject, nInject)
	}

	// Drain so the surviving workers' Run loops exit, then join the fleet.
	if _, err := client.Drain(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rowCount[0].Load() == 0 || rowCount[1].Load() == 0 {
		t.Fatal("doomed workers never ran a row; the death injection tested nothing")
	}

	wantTable, wantBytes := farmRun(t, spec)
	assertTableEqual(t, client, sub.ID, wantTable, wantBytes)
}
