package ctlplane

import (
	"net"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"

	"kfi/internal/inject"
)

// Environment variables that turn the test binary into a worker process.
const (
	workerEnvCoord = "KFI_CTLPLANE_TEST_COORD"
	workerEnvName  = "KFI_CTLPLANE_TEST_NAME"
)

// TestIntegrationWorkerProcess is not a test of its own: re-executed with
// workerEnvCoord set, it turns this test binary into a worker agent for
// TestDistributedCampaignSurvivesWorkerKill's coordinator. Without the env
// var it skips immediately.
func TestIntegrationWorkerProcess(t *testing.T) {
	coord := os.Getenv(workerEnvCoord)
	if coord == "" {
		t.Skip("helper: runs only when re-executed as a worker process")
	}
	w, err := NewWorker(WorkerConfig{
		Coordinator:  coord,
		Name:         os.Getenv(workerEnvName),
		PollInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// spawnWorker re-executes the test binary as a worker process.
func spawnWorker(t *testing.T, coordURL, name string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestIntegrationWorkerProcess$", "-test.timeout=300s")
	cmd.Env = append(os.Environ(), workerEnvCoord+"="+coordURL, workerEnvName+"="+name)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning worker %s: %v", name, err)
	}
	return cmd
}

// TestDistributedCampaignSurvivesWorkerKill is the tentpole's acceptance
// test: a coordinator in this process, two worker processes (separate OS
// processes re-executed from the test binary), a real-platform campaign.
// One worker is SIGKILLed mid-campaign — no cleanup, no goodbye, exactly
// like a machine dropping off the network. The survivor must pick up the
// dead worker's leases after expiry and finish, and the recovered run's
// outcome table AND canonical journal bytes must be identical to the same
// spec executed through the in-process farm.
func TestDistributedCampaignSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test: spawns worker processes")
	}
	dir := t.TempDir()
	coord, err := NewCoordinator(Config{
		JournalDir: dir,
		LeaseTTL:   700 * time.Millisecond,
		ChunkSize:  2, // small chunks: many lease round trips, a long kill window
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: coord}
	go srv.Serve(ln)
	defer srv.Close()
	coordURL := "http://" + ln.Addr().String()
	client, err := NewClient(coordURL)
	if err != nil {
		t.Fatal(err)
	}

	spec := testSpec(inject.CampStack, 80, 13)
	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	victim := spawnWorker(t, coordURL, "proc-victim")
	survivor := spawnWorker(t, coordURL, "proc-survivor")
	defer func() {
		victim.Process.Kill()
		survivor.Process.Kill()
		victim.Wait()
		survivor.Wait()
	}()

	// Let the campaign make real progress, then kill the victim cold. The
	// wait predicate leaves most of the campaign still to run, so the kill
	// lands mid-flight.
	killAt := waitStatus(t, client, sub.ID, "enough progress to kill mid-campaign",
		func(st Status) bool { return st.State == StateRunning && st.Done >= 8 })
	if killAt.Done >= killAt.Total {
		t.Fatalf("campaign finished (%d/%d) before the kill; enlarge the spec", killAt.Done, killAt.Total)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	t.Logf("killed victim worker at %d/%d journaled", killAt.Done, killAt.Total)

	st := waitStatus(t, client, sub.ID, "done after worker kill",
		func(st Status) bool { return st.State == StateDone })
	if st.Done != st.Total {
		t.Fatalf("final status %+v", st)
	}

	// Drain so the survivor exits cleanly.
	if _, err := client.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("surviving worker exited with %v", err)
	}

	wantTable, wantBytes := farmRun(t, spec)
	assertTableEqual(t, client, sub.ID, wantTable, wantBytes)
}
