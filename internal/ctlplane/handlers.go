package ctlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"

	"kfi/internal/campaign"
)

// routes wires the /v1 API onto the coordinator's mux.
func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/campaigns", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/campaigns", c.handleList)
	c.mux.HandleFunc("GET /v1/campaigns/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /v1/campaigns/{id}/results", c.handleResults)
	c.mux.HandleFunc("POST /v1/campaigns/{id}/results", c.handleStream)
	c.mux.HandleFunc("POST /v1/campaigns/{id}/cancel", c.handleCancel)
	c.mux.HandleFunc("POST /v1/campaigns/{id}/error", c.handleError)
	c.mux.HandleFunc("POST /v1/lease", c.handleLease)
	c.mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/drain", c.handleDrain)
	c.mux.HandleFunc("POST /v1/crash", c.handleCrash)
}

// maxBodyBytes bounds non-streaming request bodies; every JSON request in
// the protocol is far smaller.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// find resolves a campaign by path ID.
func (c *Coordinator) find(w http.ResponseWriter, r *http.Request) *campaignState {
	id := r.PathValue("id")
	c.mu.Lock()
	st := c.campaigns[id]
	c.mu.Unlock()
	if st == nil {
		writeErr(w, http.StatusNotFound, "no campaign %q", id)
	}
	return st
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if !readJSON(w, r, &spec) {
		return
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	c.mu.Unlock()
	st, existed, err := c.admit(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	st.mu.Lock()
	status := st.statusLocked()
	st.mu.Unlock()
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, status)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	campaigns := c.snapshot()
	c.mu.Lock()
	out := ServiceStatus{Draining: c.draining, Campaigns: campaigns, Crashes: c.crashes}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := c.find(w, r)
	if st == nil {
		return
	}
	now := c.clock.Now()
	st.mu.Lock()
	if st.state == StateRunning {
		c.sweepLocked(st, now)
	}
	status := st.statusLocked()
	st.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleResults serves a finished campaign's canonical journal bytes. The
// body is the durable artifact itself — header frame plus index-sorted
// record frames — so a client can verify it against a local farm run
// byte-for-byte.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	st := c.find(w, r)
	if st == nil {
		return
	}
	st.mu.Lock()
	state := st.state
	st.mu.Unlock()
	if state != StateDone {
		writeErr(w, http.StatusConflict, "campaign %s is %s, results require done", st.id, state)
		return
	}
	data, err := os.ReadFile(c.journalPath(st.id))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading journal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleStream ingests a worker's chunked stream of journal-framed outcome
// rows. Each valid frame is journaled at most once: a row whose index is
// already journaled — a zombie worker racing the lease that replaced it, a
// retry after a torn connection — is discarded as a duplicate, which is what
// makes delivery effectively exactly-once without any wire-level acking.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	st := c.find(w, r)
	if st == nil {
		return
	}
	leaseID := r.URL.Query().Get("lease")
	var sum StreamSummary
	fr := campaign.NewFrameReader(r.Body)
	for {
		payload, ok := fr.Next()
		if !ok {
			// A CRC/length mismatch means the connection died mid-frame;
			// everything before the damage is intact, so treat it as
			// end-of-stream exactly like journal recovery does.
			break
		}
		idx, res, err := campaign.DecodeRecord(payload)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "undecodable row after %d accepted: %v", sum.Accepted, err)
			return
		}
		st.mu.Lock()
		if idx < 0 || idx >= st.total {
			st.mu.Unlock()
			writeErr(w, http.StatusBadRequest, "row index %d out of range [0, %d)", idx, st.total)
			return
		}
		if _, dup := st.done[idx]; dup {
			st.duplicates++
			sum.Duplicates++
			// Still credit the lease: the index is durably journaled, so the
			// lease holding it must not keep it outstanding (or expiry would
			// requeue work that is already done).
			st.queue.markDone(leaseID, idx)
			st.mu.Unlock()
			continue
		}
		if st.journal == nil {
			// Terminal campaign (cancelled/failed): nothing to persist to.
			st.mu.Unlock()
			continue
		}
		if err := st.journal.Append(idx, res); err != nil {
			st.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "journal append: %v", err)
			return
		}
		st.done[idx] = res
		st.counts.Add(res)
		st.queue.markDone(leaseID, idx)
		sum.Accepted++
		if st.state == StateRunning && len(st.done) >= st.total {
			c.finalizeLocked(st)
		}
		st.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, sum)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	st := c.find(w, r)
	if st == nil {
		return
	}
	st.mu.Lock()
	if !st.state.Terminal() {
		st.cancelled = true
		st.state = StateCancelled
		if st.journal != nil {
			st.journal.Close()
			st.journal = nil
		}
		st.queue.pending = nil
		for id := range st.queue.leases {
			delete(st.queue.leases, id)
			c.mu.Lock()
			delete(c.leaseOwner, id)
			c.mu.Unlock()
		}
	}
	status := st.statusLocked()
	st.mu.Unlock()
	c.logf("campaign %s: cancelled", st.id)
	writeJSON(w, http.StatusOK, status)
}

// handleError fails a campaign on a worker-reported unrecoverable error.
// Worker-local trouble (a crashed guest, a lost node) never lands here — the
// supervision layers absorb those; this is for contradictions that make the
// campaign itself unrunnable, like a golden-checksum mismatch proving the
// worker and coordinator built different guests.
func (c *Coordinator) handleError(w http.ResponseWriter, r *http.Request) {
	st := c.find(w, r)
	if st == nil {
		return
	}
	var rep ErrorReport
	if !readJSON(w, r, &rep) {
		return
	}
	st.mu.Lock()
	if !st.state.Terminal() {
		st.state = StateFailed
		st.errMsg = fmt.Sprintf("worker %s: %s", rep.Worker, rep.Msg)
		if st.journal != nil {
			st.journal.Close()
			st.journal = nil
		}
	}
	status := st.statusLocked()
	st.mu.Unlock()
	c.logf("campaign %s: failed by worker report: %s", st.id, rep.Msg)
	writeJSON(w, http.StatusOK, status)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, LeaseResponse{NoWork: true, Drain: true})
		return
	}
	ids := make([]string, 0, len(c.campaigns))
	for id := range c.campaigns {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		c.mu.Lock()
		st := c.campaigns[id]
		c.mu.Unlock()
		if st == nil {
			continue
		}
		st.mu.Lock()
		if st.state != StateRunning {
			st.mu.Unlock()
			continue
		}
		c.sweepLocked(st, now)
		l := st.queue.grant(st.id, req.Worker, now, c.cfg.LeaseTTL)
		if l == nil {
			st.mu.Unlock()
			continue
		}
		resp := LeaseResponse{
			LeaseID:         l.id,
			CampaignID:      st.id,
			Spec:            st.spec,
			Golden:          st.golden,
			Indices:         append([]int(nil), l.order...),
			HeartbeatMillis: (c.cfg.LeaseTTL / 3).Milliseconds(),
		}
		st.mu.Unlock()
		c.mu.Lock()
		c.leaseOwner[l.id] = id
		c.mu.Unlock()
		c.logf("lease %s: %d indices to worker %s", l.id, len(resp.Indices), req.Worker)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{NoWork: true})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	id, ok := c.leaseOwner[req.LeaseID]
	var st *campaignState
	if ok {
		st = c.campaigns[id]
	}
	c.mu.Unlock()
	if st == nil {
		writeJSON(w, http.StatusOK, HeartbeatResponse{Lost: true})
		return
	}
	st.mu.Lock()
	c.sweepLocked(st, now)
	alive := st.queue.heartbeat(req.LeaseID, now, c.cfg.LeaseTTL)
	st.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{Lost: !alive})
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.logf("draining: no further leases will be granted")
	c.handleList(w, r)
}

func (c *Coordinator) handleCrash(w http.ResponseWriter, r *http.Request) {
	var rep CrashReport
	if !readJSON(w, r, &rep) {
		return
	}
	c.mu.Lock()
	c.crashes.Received++
	if c.crashes.ByCause == nil {
		c.crashes.ByCause = make(map[string]int)
	}
	c.crashes.ByCause[rep.Cause]++
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, struct{}{})
}
