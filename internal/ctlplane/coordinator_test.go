package ctlplane

import (
	"slices"
	"strings"
	"testing"
	"time"

	"kfi/internal/inject"
)

// TestLeaseExpiryRequeue pins the lease state machine with a fake clock: a
// heartbeat extends a lease past its original deadline, a worker that goes
// silent mid-chunk forfeits the lease, the chunk is requeued to the front of
// the queue for the next worker, and a post-expiry heartbeat reports Lost.
func TestLeaseExpiryRequeue(t *testing.T) {
	clock := newFakeClock()
	ttl := 30 * time.Second
	_, client := testCoordinator(t, Config{Clock: clock, LeaseTTL: ttl, ChunkSize: 3})

	spec := testSpec(inject.CampStack, 9, 7)
	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, client, sub.ID, "running", func(st Status) bool { return st.State == StateRunning })

	l1, err := client.Lease("silent-worker")
	if err != nil {
		t.Fatal(err)
	}
	if l1.NoWork || len(l1.Indices) != 3 || l1.CampaignID != sub.ID {
		t.Fatalf("first lease = %+v, want a 3-index chunk of %s", l1, sub.ID)
	}
	if l1.HeartbeatMillis != (ttl / 3).Milliseconds() {
		t.Errorf("heartbeat interval %dms, want %dms", l1.HeartbeatMillis, (ttl / 3).Milliseconds())
	}

	// Heartbeats extend the deadline: at +20s and again at +40s — past the
	// original +30s deadline — the lease must still be alive.
	clock.advance(20 * time.Second)
	if hb, err := client.Heartbeat(l1.LeaseID, "silent-worker"); err != nil || hb.Lost {
		t.Fatalf("heartbeat at +20s = %+v, %v; want alive", hb, err)
	}
	clock.advance(20 * time.Second)
	if hb, err := client.Heartbeat(l1.LeaseID, "silent-worker"); err != nil || hb.Lost {
		t.Fatalf("heartbeat at +40s = %+v, %v; want alive (deadline was extended)", hb, err)
	}

	// Then the worker goes silent past the TTL: the next worker's lease
	// request must receive the forfeited chunk — requeued to the FRONT, ahead
	// of the untouched pending chunks.
	clock.advance(ttl + time.Second)
	l2, err := client.Lease("replacement-worker")
	if err != nil {
		t.Fatal(err)
	}
	if l2.NoWork {
		t.Fatal("no work for replacement worker; expired chunk was not requeued")
	}
	if !slices.Equal(l2.Indices, l1.Indices) {
		t.Fatalf("replacement lease got %v, want the forfeited chunk %v first", l2.Indices, l1.Indices)
	}
	if l2.LeaseID == l1.LeaseID {
		t.Fatal("requeued chunk reissued under the same lease ID")
	}

	// The silent worker's late heartbeat learns the lease is gone.
	if hb, err := client.Heartbeat(l1.LeaseID, "silent-worker"); err != nil || !hb.Lost {
		t.Fatalf("post-expiry heartbeat = %+v, %v; want Lost", hb, err)
	}

	st, err := client.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leased != 1 || st.Pending != 2 {
		t.Errorf("chunks = %d leased / %d pending, want 1 / 2", st.Leased, st.Pending)
	}
}

// TestDuplicateDelivery pins exactly-once journaling under double delivery:
// a worker streams part of its chunk and dies; the chunk's unjournaled
// remainder is releated to a second worker; the zombie's full stream then
// arrives late, and every already-journaled row is discarded without
// corrupting the outcome table, which stays byte-identical to a farm run.
func TestDuplicateDelivery(t *testing.T) {
	clock := newFakeClock()
	ttl := 30 * time.Second
	_, client := testCoordinator(t, Config{Clock: clock, LeaseTTL: ttl, ChunkSize: 100})

	spec := testSpec(inject.CampData, 10, 21)
	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := waitStatus(t, client, sub.ID, "running", func(st Status) bool { return st.State == StateRunning })
	pre := run.Done // plan-synthesized rows journaled at prepare

	l1, err := client.Lease("zombie")
	if err != nil {
		t.Fatal(err)
	}
	if l1.NoWork {
		t.Fatal("no lease for first worker")
	}
	rows := localRows(t, spec, l1.Indices)
	if len(rows) != len(l1.Indices) {
		t.Fatalf("local run produced %d rows for %d indices", len(rows), len(l1.Indices))
	}

	// The zombie journals 3 rows, then goes silent.
	sum := streamRows(t, client, sub.ID, l1.LeaseID, rows[:3])
	if sum.Accepted != 3 || sum.Duplicates != 0 {
		t.Fatalf("partial stream summary = %+v, want 3 accepted", sum)
	}
	clock.advance(ttl + time.Second)

	// The replacement lease carries only the unjournaled remainder.
	l2, err := client.Lease("replacement")
	if err != nil {
		t.Fatal(err)
	}
	if l2.NoWork {
		t.Fatal("expired chunk not releated")
	}
	wantRemainder := l1.Indices[3:]
	if !slices.Equal(l2.Indices, wantRemainder) {
		t.Fatalf("releated indices %v, want unjournaled remainder %v", l2.Indices, wantRemainder)
	}

	// The zombie's full stream arrives late — all 10 rows, 3 of them already
	// journaled under its dead lease, 7 new (journaled under no live lease
	// credit, which is fine: the journal, not the lease, is the truth).
	sum = streamRows(t, client, sub.ID, l1.LeaseID, rows)
	if sum.Accepted != len(rows)-3 || sum.Duplicates != 3 {
		t.Fatalf("late full stream summary = %+v, want %d accepted / 3 duplicates", sum, len(rows)-3)
	}

	// The replacement worker executes its (now fully journaled) chunk and
	// streams it: pure duplicates, all discarded, lease released.
	sum = streamRows(t, client, sub.ID, l2.LeaseID, rows[3:])
	if sum.Accepted != 0 || sum.Duplicates != len(rows)-3 {
		t.Fatalf("duplicate chunk summary = %+v, want all %d duplicates", sum, len(rows)-3)
	}

	st := waitStatus(t, client, sub.ID, "done", func(st Status) bool { return st.State == StateDone })
	if st.Done != st.Total || st.Total != 10 {
		t.Fatalf("final status %+v, want 10/10 done", st)
	}
	if st.Duplicates != 3+len(rows)-3 {
		t.Errorf("duplicate count = %d, want %d", st.Duplicates, len(rows))
	}
	if pre+len(rows) != st.Total {
		t.Logf("note: %d pre-synthesized + %d executed rows", pre, len(rows))
	}

	wantTable, wantBytes := farmRun(t, spec)
	assertTableEqual(t, client, sub.ID, wantTable, wantBytes)
}

// TestSubmitIdempotentAndValidated: resubmitting a spec addresses the same
// campaign; different specs get different IDs; invalid specs are rejected
// through the same registry paths the CLIs use.
func TestSubmitIdempotentAndValidated(t *testing.T) {
	_, client := testCoordinator(t, Config{Clock: newFakeClock(), ChunkSize: 4})

	spec := testSpec(inject.CampStack, 6, 3)
	first, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != again.ID {
		t.Fatalf("resubmit created a new campaign: %s vs %s", first.ID, again.ID)
	}

	other := spec
	other.Seed++
	second, err := client.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("distinct specs share a campaign ID")
	}

	for _, bad := range []Spec{
		{Platform: "vax", Campaign: "stack", N: 5},
		{Platform: "p4", Campaign: "paging", N: 5},
		{Platform: "p4", Campaign: "stack", N: 0},
		{Platform: "p4", Campaign: "stack", N: 5, Burst: 9},
		{Platform: "p4", Campaign: "stack", N: 5, Retries: -1},
	} {
		if _, err := client.Submit(bad); err == nil {
			t.Errorf("invalid spec %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "invalid spec") {
			t.Errorf("invalid spec %+v: unexpected error %v", bad, err)
		}
	}

	if _, err := client.Status("no-such-campaign"); err == nil {
		t.Error("status of unknown campaign succeeded")
	}
}

// TestCoordinatorRestartResumes: a coordinator torn down mid-campaign and
// rebuilt over the same journal directory re-admits the campaign from its
// spec sidecar, resumes from the journaled prefix (the already-streamed rows
// are not re-executed), and finishes with the farm-identical table.
func TestCoordinatorRestartResumes(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	coord1, client1 := testCoordinator(t, Config{JournalDir: dir, Clock: clock, ChunkSize: 4})

	spec := testSpec(inject.CampStack, 12, 5)
	sub, err := client1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, client1, sub.ID, "running", func(st Status) bool { return st.State == StateRunning })

	l1, err := client1.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	rows := localRows(t, spec, l1.Indices)
	streamRows(t, client1, sub.ID, l1.LeaseID, rows)
	mid, err := client1.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Done == 0 || mid.Done >= mid.Total {
		t.Fatalf("restart must happen mid-campaign; done = %d/%d", mid.Done, mid.Total)
	}
	coord1.Close() // the "crash": journals closed, memory gone

	_, client2 := testCoordinator(t, Config{JournalDir: dir, Clock: clock, ChunkSize: 4})
	st := waitStatus(t, client2, sub.ID, "running after restart",
		func(st Status) bool { return st.State == StateRunning })
	if st.Done < mid.Done {
		t.Fatalf("restart lost journaled rows: %d < %d", st.Done, mid.Done)
	}

	// Finish the campaign through the restarted coordinator.
	for {
		l, err := client2.Lease("w2")
		if err != nil {
			t.Fatal(err)
		}
		if l.NoWork {
			break
		}
		streamRows(t, client2, sub.ID, l.LeaseID, localRows(t, spec, l.Indices))
	}
	waitStatus(t, client2, sub.ID, "done", func(st Status) bool { return st.State == StateDone })

	wantTable, wantBytes := farmRun(t, spec)
	assertTableEqual(t, client2, sub.ID, wantTable, wantBytes)

	// A third coordinator over the same directory reloads the finished
	// campaign without rebuilding a guest, and serves identical bytes.
	_, client3 := testCoordinator(t, Config{JournalDir: dir, Clock: clock})
	st3 := waitStatus(t, client3, sub.ID, "done after reload",
		func(st Status) bool { return st.State == StateDone })
	if st3.Done != st3.Total {
		t.Fatalf("reloaded status %+v", st3)
	}
	assertTableEqual(t, client3, sub.ID, wantTable, wantBytes)
}

// TestCancelAndDrain: cancelling stops a campaign and frees its leases;
// draining makes lease requests report Drain so workers exit.
func TestCancelAndDrain(t *testing.T) {
	_, client := testCoordinator(t, Config{Clock: newFakeClock(), ChunkSize: 2})

	spec := testSpec(inject.CampStack, 6, 9)
	sub, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, client, sub.ID, "running", func(st Status) bool { return st.State == StateRunning })
	if _, err := client.Lease("w"); err != nil {
		t.Fatal(err)
	}
	st, err := client.Cancel(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled || st.Leased != 0 || st.Pending != 0 {
		t.Fatalf("cancelled status = %+v, want cancelled with no chunks", st)
	}
	if _, err := client.RawResults(sub.ID); err == nil {
		t.Error("results of a cancelled campaign served")
	}

	svc, err := client.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Draining {
		t.Fatal("drain did not latch")
	}
	l, err := client.Lease("w")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Drain || !l.NoWork {
		t.Fatalf("lease under drain = %+v, want Drain+NoWork", l)
	}
	if _, err := client.Submit(testSpec(inject.CampData, 4, 1)); err == nil {
		t.Error("submit accepted while draining")
	}
}

// TestCrashTelemetry: forwarded crash reports aggregate in service status.
func TestCrashTelemetry(t *testing.T) {
	_, client := testCoordinator(t, Config{Clock: newFakeClock()})
	for range 3 {
		if err := client.ReportCrash(CrashReport{Platform: "p4", Cause: "bad paging request"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.ReportCrash(CrashReport{Platform: "g4", Cause: "oops"}); err != nil {
		t.Fatal(err)
	}
	svc, err := client.Service()
	if err != nil {
		t.Fatal(err)
	}
	if svc.Crashes.Received != 4 || svc.Crashes.ByCause["bad paging request"] != 3 || svc.Crashes.ByCause["oops"] != 1 {
		t.Fatalf("crash summary = %+v", svc.Crashes)
	}
}
