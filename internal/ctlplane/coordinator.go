package ctlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"kfi/internal/campaign"
	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/stats"
)

// Config tunes a Coordinator.
type Config struct {
	// JournalDir is where campaigns persist: one CRC-framed outcome journal
	// plus one spec sidecar per campaign. Required; it is the coordinator's
	// entire durable state, so a coordinator restarted over the same
	// directory resumes every campaign idempotently.
	JournalDir string
	// LeaseTTL is how long a chunk lease lives without a heartbeat
	// (0 = default 30s). Workers beat at roughly a third of this.
	LeaseTTL time.Duration
	// ChunkSize caps the indices per lease (0 = auto: the execution order
	// split ~32 ways, at least 1 — several chunks per worker keep the lease
	// queue a load balancer the way the farm's steal queue is).
	ChunkSize int
	// Clock injects time for tests (nil = SystemClock).
	Clock Clock
	// Logf, when set, receives one line per notable event.
	Logf func(format string, args ...any)
}

const defaultLeaseTTL = 30 * time.Second

// Coordinator is the campaign-as-a-service control plane: it validates and
// persists submissions, plans each campaign's trigger schedule, leases
// chunks to workers with heartbeat expiry, journals every streamed outcome
// row exactly once, and finalizes each campaign's journal in canonical
// (index-sorted) form so distributed runs are byte-comparable to
// single-process ones.
type Coordinator struct {
	cfg   Config
	clock Clock
	mux   *http.ServeMux

	mu         sync.Mutex
	campaigns  map[string]*campaignState
	leaseOwner map[string]string // lease ID -> campaign ID
	draining   bool
	closed     bool
	crashes    CrashSummary

	// buildSem serializes guest-system builds: preparing several campaigns
	// at once would multiply peak memory for no throughput gain.
	buildSem chan struct{}
	// prepared, when set (tests), is called after each prepare attempt.
	prepared func(id string)
}

// campaignState is one campaign's in-memory state; its mutex guards every
// field below the identity block. The durable truth is the journal — this
// struct is reconstructible from it plus the spec sidecar.
type campaignState struct {
	id   string
	spec Spec
	res  Resolved

	mu         sync.Mutex
	state      State
	errMsg     string
	header     campaign.Header
	golden     uint32
	total      int
	done       map[int]inject.Result
	counts     stats.Counts
	duplicates int
	queue      *chunkQueue
	journal    *campaign.Journal
	cancelled  bool
}

// NewCoordinator builds a coordinator over a journal directory, reloading
// every campaign recorded there: finished campaigns come back Done without
// rebuilding anything (their canonical journal is complete), unfinished ones
// are queued to resume from their journaled prefix.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.JournalDir == "" {
		return nil, errors.New("ctlplane: Config.JournalDir is required")
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultLeaseTTL
	}
	c := &Coordinator{
		cfg:        cfg,
		clock:      cfg.Clock,
		campaigns:  make(map[string]*campaignState),
		leaseOwner: make(map[string]string),
		buildSem:   make(chan struct{}, 1),
	}
	if c.clock == nil {
		c.clock = SystemClock{}
	}
	c.mux = http.NewServeMux()
	c.routes()
	if err := c.reload(); err != nil {
		return nil, err
	}
	return c, nil
}

// ServeHTTP serves the control-plane API.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Close marks the coordinator closed and closes every open journal. It does
// not wait for in-flight prepares; they observe the closed flag and abort.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	states := make([]*campaignState, 0, len(c.campaigns))
	for _, st := range c.campaigns {
		states = append(states, st)
	}
	c.mu.Unlock()
	var first error
	for _, st := range states {
		st.mu.Lock()
		if st.journal != nil {
			if err := st.journal.Close(); err != nil && first == nil {
				first = err
			}
			st.journal = nil
		}
		st.mu.Unlock()
	}
	return first
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// --- persistence ---

func (c *Coordinator) journalPath(id string) string {
	return filepath.Join(c.cfg.JournalDir, id+".kjournal")
}

func (c *Coordinator) specPath(id string) string {
	return filepath.Join(c.cfg.JournalDir, id+".spec.json")
}

// writeSpec persists the spec sidecar atomically; it is what lets a
// restarted coordinator re-derive a campaign the journal header alone
// cannot (the header has no workload scale or retry policy).
func (c *Coordinator) writeSpec(id string, spec Spec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	tmp := c.specPath(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.specPath(id))
}

// reload rebuilds the campaign set from the journal directory.
func (c *Coordinator) reload() error {
	entries, err := os.ReadDir(c.cfg.JournalDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".spec.json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(c.cfg.JournalDir, name))
		if err != nil {
			return err
		}
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("ctlplane: corrupt spec sidecar %s: %w", name, err)
		}
		if _, _, err := c.admit(spec); err != nil {
			return fmt.Errorf("ctlplane: reloading %s: %w", name, err)
		}
	}
	return nil
}

// admit validates a spec and installs (or finds) its campaign, queueing
// preparation when the campaign is not already complete on disk. It returns
// the campaign and whether it already existed in memory.
func (c *Coordinator) admit(spec Spec) (*campaignState, bool, error) {
	res, err := spec.Resolve()
	if err != nil {
		return nil, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if st, ok := c.campaigns[id]; ok {
		c.mu.Unlock()
		return st, true, nil
	}
	st := &campaignState{id: id, spec: spec, res: res, state: StateQueued,
		total: spec.N, done: make(map[int]inject.Result), queue: newChunkQueue()}
	c.campaigns[id] = st
	c.mu.Unlock()

	if err := c.writeSpec(id, spec); err != nil {
		return nil, false, err
	}
	// A campaign whose journal already records every outcome needs no guest
	// system: load it straight to Done.
	if h, completed, err := campaign.ReadJournal(c.journalPath(id)); err == nil && len(completed) >= spec.N {
		st.mu.Lock()
		st.header, st.golden, st.done = h, h.Golden, completed
		st.counts = summarizeDone(completed)
		st.state = StateDone
		st.mu.Unlock()
		c.logf("campaign %s: reloaded complete (%d outcomes)", id, len(completed))
		return st, false, nil
	}
	go c.prepare(st)
	return st, false, nil
}

func summarizeDone(done map[int]inject.Result) stats.Counts {
	var counts stats.Counts
	for _, r := range done {
		counts.Add(r)
	}
	return counts
}

// --- preparation ---

// prepare builds the campaign's guest system, plans its trigger schedule,
// opens (or resumes) its journal, journals the plan's synthesized results,
// and chunks the remaining execution order for leasing.
func (c *Coordinator) prepare(st *campaignState) {
	c.buildSem <- struct{}{}
	defer func() { <-c.buildSem }()
	defer func() {
		if c.prepared != nil {
			c.prepared(st.id)
		}
	}()

	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	st.mu.Lock()
	if closed || st.cancelled || st.state != StateQueued {
		st.mu.Unlock()
		return
	}
	st.state = StatePreparing
	res := st.res
	st.mu.Unlock()

	fail := func(err error) {
		st.mu.Lock()
		if !st.state.Terminal() {
			st.state, st.errMsg = StateFailed, err.Error()
		}
		st.mu.Unlock()
		c.logf("campaign %s: failed: %v", st.id, err)
	}

	nr, err := campaign.NewNodeRunner(res.Platform, res.Scale, kernel.Options{Harden: res.Harden})
	if err != nil {
		fail(err)
		return
	}
	plan, err := nr.Plan(res.Spec)
	if err != nil {
		fail(err)
		return
	}
	header := campaign.HeaderFor(res.Platform, nr.Golden(), res.Spec)
	if res.Harden.Enabled() {
		header.Harden = res.Harden.String()
	}
	if res.Engine != 0 {
		header.Engine = res.Engine.String()
	}
	journal, completed, err := campaign.ResumeJournal(c.journalPath(st.id), header)
	if err != nil {
		fail(err)
		return
	}

	st.mu.Lock()
	if st.cancelled {
		st.mu.Unlock()
		journal.Close()
		return
	}
	st.header, st.golden, st.journal = header, nr.Golden(), journal
	for idx, r := range completed {
		st.done[idx] = r
		st.counts.Add(r)
	}
	// The plan's synthesized results (code targets the golden run never
	// reaches) complete without execution; journal the missing ones now, in
	// index order.
	preIdxs := make([]int, 0, len(plan.Pre))
	for idx := range plan.Pre {
		if _, ok := st.done[idx]; !ok {
			preIdxs = append(preIdxs, idx)
		}
	}
	sort.Ints(preIdxs)
	for _, idx := range preIdxs {
		r := plan.Pre[idx]
		if err := journal.Append(idx, r); err != nil {
			st.mu.Unlock()
			fail(err)
			return
		}
		st.done[idx] = r
		st.counts.Add(r)
	}
	// Chunk the unfinished execution order.
	var order []int
	for _, idx := range plan.Order {
		if _, ok := st.done[idx]; !ok {
			order = append(order, idx)
		}
	}
	size := c.cfg.ChunkSize
	if size <= 0 {
		size = max(len(order)/32, 1)
	}
	for lo := 0; lo < len(order); lo += size {
		st.queue.push(order[lo:min(lo+size, len(order))])
	}
	if len(st.done) >= st.total {
		c.finalizeLocked(st)
		st.mu.Unlock()
		return
	}
	st.state = StateRunning
	st.mu.Unlock()
	c.logf("campaign %s: running — %d/%d journaled, %d chunk(s) of ≤%d",
		st.id, len(st.done), st.total, (len(order)+size-1)/size, size)
}

// finalizeLocked completes a campaign: the append-order working journal is
// rewritten in canonical index order (atomically, via rename), so every run
// of this spec — in-process farm, this service, a resumed restart — leaves
// byte-identical durable bytes. Caller holds st.mu.
func (c *Coordinator) finalizeLocked(st *campaignState) {
	if st.journal != nil {
		st.journal.Close()
		st.journal = nil
	}
	canon, err := campaign.CanonicalJournalBytes(st.header, st.done)
	if err != nil {
		st.state, st.errMsg = StateFailed, err.Error()
		return
	}
	tmp := c.journalPath(st.id) + ".tmp"
	if err := os.WriteFile(tmp, canon, 0o644); err != nil {
		st.state, st.errMsg = StateFailed, err.Error()
		return
	}
	if err := os.Rename(tmp, c.journalPath(st.id)); err != nil {
		st.state, st.errMsg = StateFailed, err.Error()
		return
	}
	st.state = StateDone
	c.logf("campaign %s: done (%d outcomes)", st.id, len(st.done))
}

// --- lease bookkeeping ---

// sweepLocked expires overdue leases on one campaign. Caller holds st.mu.
func (c *Coordinator) sweepLocked(st *campaignState, now time.Time) {
	expired := st.queue.sweep(now, func(idx int) bool {
		_, ok := st.done[idx]
		return ok
	})
	for _, id := range expired {
		c.mu.Lock()
		delete(c.leaseOwner, id)
		c.mu.Unlock()
		c.logf("campaign %s: lease %s expired, chunk requeued", st.id, id)
	}
}

// statusLocked renders a campaign's Status. Caller holds st.mu.
func (st *campaignState) statusLocked() Status {
	pending, leased := st.queue.counts()
	return Status{
		ID: st.id, Spec: st.spec, State: st.state, Golden: st.golden,
		Done: len(st.done), Total: st.total, Counts: st.counts,
		Pending: pending, Leased: leased, Duplicates: st.duplicates,
		Err: st.errMsg,
	}
}

// snapshot returns the campaign list sorted for listings, sweeping expiry
// as a side effect so status reads never show a dead worker still holding a
// lease.
func (c *Coordinator) snapshot() []Status {
	now := c.clock.Now()
	c.mu.Lock()
	states := make([]*campaignState, 0, len(c.campaigns))
	for _, st := range c.campaigns {
		states = append(states, st)
	}
	c.mu.Unlock()
	out := make([]Status, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		if st.state == StateRunning {
			c.sweepLocked(st, now)
		}
		out = append(out, st.statusLocked())
		st.mu.Unlock()
	}
	SortStatuses(out)
	return out
}
