package ctlplane

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kfi/internal/campaign"
	"kfi/internal/inject"
	"kfi/internal/kernel"
)

// fakeClock is a hand-advanced Clock: tests drive lease expiry by moving
// time, never by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2004, 6, 28, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// testCoordinator spins up a coordinator and an HTTP server over it.
func testCoordinator(t *testing.T, cfg Config) (*Coordinator, *Client) {
	t.Helper()
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	t.Cleanup(func() { srv.Close(); coord.Close() })
	client, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return coord, client
}

// waitStatus polls a campaign until pred holds (the wall-clock timeout only
// bounds the test; campaign time itself may be fake).
func waitStatus(t *testing.T, client *Client, id string, what string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := client.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if pred(st) {
			return st
		}
		if st.State == StateFailed {
			t.Fatalf("campaign %s failed waiting for %s: %s", id, what, st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %s (last: %+v)", id, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// testSpec is the mini-campaign most tests run: real CISC platform, small N.
func testSpec(camp inject.Campaign, n int, seed int64) Spec {
	return Spec{Platform: "p4", Campaign: campaignSlug(camp), N: n, Seed: seed}
}

// farmRun executes a spec through the in-process farm and returns its
// outcome table and canonical journal bytes — the single-process truth the
// distributed runs must reproduce byte-for-byte.
func farmRun(t *testing.T, spec Spec) (map[int]inject.Result, []byte) {
	t.Helper()
	res, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	farm, err := campaign.NewFarm(res.Platform, 3, res.Scale, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := farm.RunWith(res.Spec, nil, campaign.ExecOptions{MaxAttempts: res.Retries})
	if err != nil {
		t.Fatal(err)
	}
	table := make(map[int]inject.Result, len(out.Results))
	for i, r := range out.Results {
		table[i] = r
	}
	h := campaign.HeaderFor(res.Platform, farm.Golden(), res.Spec)
	canon, err := campaign.CanonicalJournalBytes(h, table)
	if err != nil {
		t.Fatal(err)
	}
	return table, canon
}

// localRows computes a campaign's true rows for a set of indices through a
// NodeRunner — what an honest worker would stream.
func localRows(t *testing.T, spec Spec, indices []int) []ResultRow {
	t.Helper()
	res, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	nr, err := campaign.NewNodeRunner(res.Platform, res.Scale, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Close()
	plan, err := nr.Plan(res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var rows []ResultRow
	err = nr.RunIndices(plan, indices, campaign.ExecOptions{}, func(idx int, r inject.Result) error {
		rows = append(rows, ResultRow{Idx: idx, Result: r})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// streamRows ships rows to the coordinator under a lease.
func streamRows(t *testing.T, client *Client, campaignID, leaseID string, rows []ResultRow) StreamSummary {
	t.Helper()
	sum, err := client.StreamResults(campaignID, leaseID,
		func(send func(idx int, res inject.Result) error) error {
			for _, r := range rows {
				if err := send(r.Idx, r.Result); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("streaming %d rows: %v", len(rows), err)
	}
	return sum
}

// assertTableEqual compares a coordinator's finished results to the farm's.
func assertTableEqual(t *testing.T, client *Client, id string, wantTable map[int]inject.Result, wantBytes []byte) {
	t.Helper()
	_, got, err := client.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantTable) {
		t.Fatalf("outcome table has %d rows, want %d", len(got), len(wantTable))
	}
	for idx, want := range wantTable {
		if got[idx] != want {
			t.Errorf("idx %d: outcome %+v, want %+v", idx, got[idx], want)
		}
	}
	raw, err := client.RawResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, wantBytes) {
		t.Errorf("canonical journal bytes differ from farm run (%d vs %d bytes)", len(raw), len(wantBytes))
	}
}
