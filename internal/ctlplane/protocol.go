// Package ctlplane is the campaign control plane: a networked coordinator
// that accepts campaign submissions, shards their trigger space into chunks,
// and leases the chunks to worker machines, each of which wraps the
// per-node execution core exported by internal/campaign. It promotes the
// in-process farm's dynamic chunk stealing to machine scale — leases with
// heartbeat-based expiry play the role of the steal queue, the CRC-framed
// outcome journal plays the role of process memory — so a campaign survives
// the loss of any worker machine, and a coordinator restart, with a final
// outcome table byte-identical to a single-process farm run of the same
// spec.
//
// The wire protocol is deliberately plain: JSON request/response bodies over
// net/http (no dependencies beyond the standard library), plus one streaming
// direction — workers ship completed outcome rows as journal frames
// (internal/campaign.Frame) over a chunked POST body, so the coordinator
// persists exactly the bytes a single-process journal append would have
// produced and a connection torn by a dying worker damages at most the
// in-flight frame.
//
// Endpoints (all rooted at /v1):
//
//	POST /v1/campaigns              submit (idempotent by campaign ID)
//	GET  /v1/campaigns              list campaign statuses + service state
//	GET  /v1/campaigns/{id}         one campaign's status
//	GET  /v1/campaigns/{id}/results completed outcome rows, journal-framed
//	POST /v1/campaigns/{id}/cancel  cancel a queued or running campaign
//	POST /v1/campaigns/{id}/error   worker-reported fatal campaign error
//	POST /v1/lease                  request a chunk lease
//	POST /v1/heartbeat              extend a lease
//	POST /v1/campaigns/{id}/results (POST form) stream leased chunk results
//	POST /v1/drain                  stop handing out new leases
//	POST /v1/crash                  crashnet telemetry (kfi-monitor -forward)
package ctlplane

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"kfi/internal/campaign"
	"kfi/internal/cli"
	"kfi/internal/core"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kir"
	"kfi/internal/platform"
	"kfi/internal/stats"
)

// Spec is the wire form of one campaign submission. Platform and Campaign
// travel as registry names so the coordinator validates them through the
// platform registry exactly like the CLIs do.
type Spec struct {
	Platform string `json:"platform"`
	Campaign string `json:"campaign"`
	N        int    `json:"n"`
	Seed     int64  `json:"seed"`
	Burst    uint8  `json:"burst,omitempty"`
	// Scale multiplies the benchmark workload (1 = standard).
	Scale int `json:"scale,omitempty"`
	// Retries bounds supervised attempts per injection (0 = default).
	Retries int `json:"retries,omitempty"`
	// Harden names the kernel hardening passes ("dup", "cfsig", "dup+cfsig");
	// empty runs the paper-faithful unhardened build. Every worker builds its
	// guest with the same passes, so the coordinator's golden cross-check
	// also pins the hardening configuration.
	Harden string `json:"harden,omitempty"`
	// Engine names the execution engine workers run the guest on ("interp",
	// "predecode", "translate"); empty selects the platform default. Outcomes
	// are engine-invariant, but the choice is still part of the campaign
	// identity: the journal header records it, so a resumed or resubmitted
	// campaign cannot silently splice rows produced under a different engine.
	Engine string `json:"engine,omitempty"`
}

// Resolved is a Spec validated against the platform registry.
type Resolved struct {
	Platform isa.Platform
	Spec     campaign.Spec
	Scale    int
	Retries  int
	Harden   kir.HardenOpts
	Engine   platform.EngineKind
}

// Resolve validates the wire spec: the platform and campaign must resolve
// through the registries, and the counts must be sane.
func (s Spec) Resolve() (Resolved, error) {
	p, err := cli.ParsePlatform(s.Platform)
	if err != nil {
		return Resolved{}, err
	}
	c, err := cli.ParseCampaign(s.Campaign)
	if err != nil {
		return Resolved{}, err
	}
	if s.N < 1 {
		return Resolved{}, fmt.Errorf("campaign size n must be >= 1, got %d", s.N)
	}
	if s.Burst > 8 {
		return Resolved{}, fmt.Errorf("burst must be in [0, 8], got %d", s.Burst)
	}
	scale := s.Scale
	if scale < 1 {
		scale = 1
	}
	if s.Retries < 0 {
		return Resolved{}, fmt.Errorf("retries must be >= 0, got %d", s.Retries)
	}
	harden, err := kir.ParseHardenOpts(s.Harden)
	if err != nil {
		return Resolved{}, err
	}
	engine, err := cli.ParseEngine(s.Engine)
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{
		Platform: p,
		Spec:     campaign.Spec{Campaign: c, N: s.N, Seed: s.Seed, Burst: s.Burst},
		Scale:    scale,
		Retries:  s.Retries,
		Harden:   harden,
		Engine:   engine,
	}, nil
}

// ID derives the campaign's identity: a deterministic function of every
// spec field, so resubmitting the same spec — by a retrying client, or after
// a coordinator restart — addresses the same campaign and resumes its
// journal instead of starting a duplicate. The human-readable prefix keys
// the journal file; the checksum makes distinct specs collide-resistant.
func (s Spec) ID() (string, error) {
	r, err := s.Resolve()
	if err != nil {
		return "", err
	}
	canon := fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d",
		strings.ToLower(r.Platform.Short()), campaignSlug(r.Spec.Campaign),
		s.N, s.Seed, s.Burst, r.Scale, r.Retries)
	if r.Harden.Enabled() {
		// Appended only when set, so every pre-hardening spec keeps the
		// campaign ID (and journal identity) it always had.
		canon += "|harden=" + r.Harden.String()
	}
	if r.Engine != 0 {
		// Same back-compat rule: default-engine specs keep their old IDs.
		canon += "|engine=" + r.Engine.String()
	}
	sum := crc32.Checksum([]byte(canon), crc32.MakeTable(crc32.Castagnoli))
	return fmt.Sprintf("%s-%s-%08x", strings.ToLower(r.Platform.Short()),
		campaignSlug(r.Spec.Campaign), sum), nil
}

// campaignSlug renders a campaign name as a file-safe token.
func campaignSlug(c inject.Campaign) string {
	return strings.ReplaceAll(strings.ToLower(c.String()), " ", "-")
}

// State is a campaign's lifecycle position on the coordinator.
type State string

// Campaign lifecycle states. Queued campaigns wait for the prepare worker;
// Preparing builds the guest system, plans the trigger schedule, and opens
// (or resumes) the journal; Running leases chunks to workers; the terminal
// states are Done, Failed, and Cancelled.
const (
	StateQueued    State = "queued"
	StatePreparing State = "preparing"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is one campaign's externally visible state.
type Status struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Golden is the fault-free checksum, known once prepared.
	Golden uint32 `json:"golden,omitempty"`
	// Done counts journaled outcomes; Total is the campaign's size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Counts is the live Table 5/6-style tally over journaled outcomes.
	Counts stats.Counts `json:"counts"`
	// Pending/Leased count the queue's chunks; Duplicates counts late rows
	// discarded because their trigger was already journaled.
	Pending    int `json:"pending_chunks"`
	Leased     int `json:"leased_chunks"`
	Duplicates int `json:"duplicate_rows,omitempty"`
	// Err carries the failure reason for StateFailed.
	Err string `json:"err,omitempty"`
}

// CrashSummary aggregates crashnet telemetry forwarded by kfi-monitor.
type CrashSummary struct {
	Received int            `json:"received"`
	ByCause  map[string]int `json:"by_cause,omitempty"`
}

// ServiceStatus is the coordinator's full external state.
type ServiceStatus struct {
	Draining  bool         `json:"draining"`
	Campaigns []Status     `json:"campaigns"`
	Crashes   CrashSummary `json:"crashes"`
}

// LeaseRequest asks for a chunk of work.
type LeaseRequest struct {
	// Worker names the requesting agent (diagnostics only; leases are keyed
	// by lease ID, not worker name).
	Worker string `json:"worker"`
}

// LeaseResponse grants a chunk lease, or reports why none was granted.
type LeaseResponse struct {
	// NoWork is set when no campaign currently has leasable chunks; Drain
	// additionally tells the worker the coordinator is shutting down and
	// polling is pointless.
	NoWork bool `json:"no_work,omitempty"`
	Drain  bool `json:"drain,omitempty"`

	LeaseID    string `json:"lease_id,omitempty"`
	CampaignID string `json:"campaign_id,omitempty"`
	Spec       Spec   `json:"spec,omitempty"`
	// Golden lets the worker cross-check that its independently built guest
	// is the coordinator's guest before running a single injection.
	Golden uint32 `json:"golden,omitempty"`
	// Indices are the chunk's target indices in trigger order.
	Indices []int `json:"indices,omitempty"`
	// HeartbeatMillis is the interval the worker must beat at to keep the
	// lease; missing roughly two beats forfeits it.
	HeartbeatMillis int64 `json:"heartbeat_millis,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. A worker whose lease expired
// (Lost) should abandon the chunk: the coordinator has requeued it, and any
// rows the worker still streams are deduplicated against the journal.
type HeartbeatResponse struct {
	Lost bool `json:"lost,omitempty"`
}

// ResultRow is one streamed outcome row. Its JSON layout matches the
// journal's record payload, so a frame lifted off the stream can be
// journaled as-is.
type ResultRow struct {
	Idx    int           `json:"idx"`
	Result inject.Result `json:"result"`
}

// StreamSummary closes a result stream: how many rows the coordinator
// accepted and how many it discarded as duplicates.
type StreamSummary struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// ErrorReport is a worker-reported fatal campaign error (a build failure, a
// golden-checksum mismatch): conditions that re-running on another worker
// cannot fix, so the coordinator fails the campaign rather than retrying it
// forever.
type ErrorReport struct {
	LeaseID string `json:"lease_id,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Msg     string `json:"msg"`
}

// CrashReport is one forwarded crashnet packet (kfi-monitor -forward).
type CrashReport struct {
	Source    string `json:"source,omitempty"`
	Platform  string `json:"platform"`
	Cause     string `json:"cause"`
	Seq       uint32 `json:"seq"`
	PC        uint32 `json:"pc"`
	FaultAddr uint32 `json:"fault_addr"`
	SP        uint32 `json:"sp"`
	Cycles    uint64 `json:"cycles"`
}

// SpecFor builds the wire spec for a study-style submission, deriving the
// per-(platform, campaign) seed exactly as the local study engine does, so
// `kfi-campaign -submit` and a local `kfi-campaign` run of the same flags
// inject the same targets.
func SpecFor(p isa.Platform, c inject.Campaign, n int, baseSeed int64, burst uint8, scale, retries int, harden kir.HardenOpts, engine platform.EngineKind) Spec {
	s := Spec{
		Platform: strings.ToLower(p.Short()),
		Campaign: campaignSlug(c),
		N:        n,
		Seed:     core.SpecSeed(baseSeed, p, c),
		Burst:    burst,
		Scale:    scale,
		Retries:  retries,
	}
	if harden.Enabled() {
		s.Harden = harden.String()
	}
	if engine != 0 {
		s.Engine = engine.String()
	}
	return s
}

// SortStatuses orders campaign statuses for stable listings: non-terminal
// first, then by ID.
func SortStatuses(list []Status) {
	sort.Slice(list, func(i, j int) bool {
		ti, tj := list[i].State.Terminal(), list[j].State.Terminal()
		if ti != tj {
			return !ti
		}
		return list[i].ID < list[j].ID
	})
}
