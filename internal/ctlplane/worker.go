package ctlplane

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kfi/internal/campaign"
	"kfi/internal/inject"
	"kfi/internal/kernel"
	"kfi/internal/platform"
)

// WorkerConfig tunes a worker agent.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (any form the -coordinator
	// flag accepts).
	Coordinator string
	// Name identifies the worker in leases and logs.
	Name string
	// PollInterval is the idle delay between lease requests (0 = 2s).
	PollInterval time.Duration
	// Engine, when nonzero, overrides the execution engine for every chunk
	// this worker runs, regardless of what the campaign spec selected.
	// Outcomes are engine-invariant, so the override only changes this
	// machine's throughput.
	Engine platform.EngineKind
	// Logf, when set, receives one line per notable event.
	Logf func(format string, args ...any)

	// rowFault, when set (tests), runs before each completed row is
	// streamed; a non-nil error abandons the chunk mid-stream, simulating a
	// worker dying with the lease half done.
	rowFault func(campaignID string, idx int) error
}

const defaultPollInterval = 2 * time.Second

// Worker is the agent side of the control plane: it polls the coordinator
// for chunk leases, runs each leased chunk through a NodeRunner (the same
// execution core as one farm node), and streams completed rows back while a
// background heartbeat keeps the lease alive. Guest systems and plans are
// cached per campaign, so successive leases of one campaign reuse the
// node's forward-advancing snapshot chain.
type Worker struct {
	cfg    WorkerConfig
	client *Client

	stopped atomic.Bool

	mu    sync.Mutex
	nodes map[string]*workerNode
}

// workerNode is one campaign's cached execution state on this worker.
type workerNode struct {
	nr   *campaign.NodeRunner
	plan *campaign.Plan
	res  Resolved
}

// NewWorker builds a worker agent for the given coordinator.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	client, err := NewClient(cfg.Coordinator)
	if err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = defaultPollInterval
	}
	return &Worker{cfg: cfg, client: client, nodes: make(map[string]*workerNode)}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Stop makes the worker exit after its current chunk (checked between rows
// and between polls).
func (w *Worker) Stop() { w.stopped.Store(true) }

// Close releases every cached guest system's snapshot chain.
func (w *Worker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, n := range w.nodes {
		n.nr.Close()
		delete(w.nodes, id)
	}
}

// Run polls for leases and executes them until the coordinator drains or
// Stop is called. Transient coordinator errors (it may be restarting) are
// retried at the poll interval, not fatal: the durable campaign state is on
// the coordinator, so a worker's only sound move is to keep polling.
func (w *Worker) Run() error {
	defer w.Close()
	for !w.stopped.Load() {
		lease, err := w.client.Lease(w.cfg.Name)
		if err != nil {
			w.logf("lease poll: %v", err)
			time.Sleep(w.cfg.PollInterval)
			continue
		}
		if lease.Drain {
			w.logf("coordinator draining; exiting")
			return nil
		}
		if lease.NoWork {
			time.Sleep(w.cfg.PollInterval)
			continue
		}
		if err := w.runLease(lease); err != nil {
			w.logf("lease %s: %v", lease.LeaseID, err)
			time.Sleep(w.cfg.PollInterval)
		}
	}
	return nil
}

// node returns (building and caching if needed) the execution state for a
// campaign. The build re-derives everything from the spec — two machines
// never ship guest state to each other, they deterministically reconstruct
// it.
func (w *Worker) node(campaignID string, spec Spec) (*workerNode, error) {
	w.mu.Lock()
	n := w.nodes[campaignID]
	w.mu.Unlock()
	if n != nil {
		return n, nil
	}
	res, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	w.logf("campaign %s: building %s guest (scale %d, harden %v)", campaignID, spec.Platform, res.Scale, res.Harden)
	nr, err := campaign.NewNodeRunner(res.Platform, res.Scale, kernel.Options{Harden: res.Harden})
	if err != nil {
		return nil, err
	}
	plan, err := nr.Plan(res.Spec)
	if err != nil {
		nr.Close()
		return nil, err
	}
	n = &workerNode{nr: nr, plan: plan, res: res}
	w.mu.Lock()
	w.nodes[campaignID] = n
	w.mu.Unlock()
	return n, nil
}

// errLeaseLost aborts a chunk whose lease the coordinator reclaimed.
var errLeaseLost = errors.New("lease lost")

// runLease executes one leased chunk and streams its rows.
func (w *Worker) runLease(lease LeaseResponse) error {
	n, err := w.node(lease.CampaignID, lease.Spec)
	if err != nil {
		// A build or plan failure is not machine-local — every worker
		// re-deriving this spec will fail the same way — so report it
		// rather than letting the lease bounce between workers forever.
		w.client.ReportError(lease.CampaignID, ErrorReport{
			LeaseID: lease.LeaseID, Worker: w.cfg.Name,
			Msg: fmt.Sprintf("building campaign node: %v", err)})
		return err
	}
	if n.nr.Golden() != lease.Golden {
		err := fmt.Errorf("golden checksum mismatch: worker %08x, coordinator %08x",
			n.nr.Golden(), lease.Golden)
		w.client.ReportError(lease.CampaignID, ErrorReport{
			LeaseID: lease.LeaseID, Worker: w.cfg.Name, Msg: err.Error()})
		return err
	}

	// Heartbeat in the background for as long as the chunk runs.
	var lost atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	interval := time.Duration(lease.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				hb, err := w.client.Heartbeat(lease.LeaseID, w.cfg.Name)
				if err == nil && hb.Lost {
					lost.Store(true)
					return
				}
			}
		}
	}()

	opts := campaign.ExecOptions{MaxAttempts: n.res.Retries, Engine: n.res.Engine}
	if w.cfg.Engine != 0 {
		// A worker-local override is sound because outcomes are
		// engine-invariant; it changes this machine's throughput, nothing
		// the coordinator journals.
		opts.Engine = w.cfg.Engine
	}
	sum, err := w.client.StreamResults(lease.CampaignID, lease.LeaseID,
		func(send func(idx int, res inject.Result) error) error {
			return n.nr.RunIndices(n.plan, lease.Indices, opts,
				func(idx int, res inject.Result) error {
					if lost.Load() {
						return errLeaseLost
					}
					if w.stopped.Load() {
						return errLeaseLost
					}
					if w.cfg.rowFault != nil {
						if err := w.cfg.rowFault(lease.CampaignID, idx); err != nil {
							return err
						}
					}
					return send(idx, res)
				})
		})
	if err != nil {
		if errors.Is(err, errLeaseLost) {
			// The coordinator requeued the chunk; sent rows are journaled,
			// the rest will re-run elsewhere. Not an error for this worker.
			w.logf("lease %s: reclaimed by coordinator, chunk abandoned", lease.LeaseID)
			return nil
		}
		return err
	}
	w.logf("lease %s: streamed %d row(s), %d duplicate(s)",
		lease.LeaseID, sum.Accepted, sum.Duplicates)
	return nil
}
