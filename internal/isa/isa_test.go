package isa

import (
	"strings"
	"testing"
)

func TestPlatformString(t *testing.T) {
	tests := []struct {
		give      Platform
		want      string
		wantShort string
	}{
		{CISC, "P4-class (CISC)", "p4"},
		{RISC, "G4-class (RISC)", "g4"},
		{Platform(0), "Platform(0)", "??"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Platform(%d).String() = %q, want %q", int(tt.give), got, tt.want)
		}
		if got := tt.give.Short(); got != tt.wantShort {
			t.Errorf("Platform(%d).Short() = %q, want %q", int(tt.give), got, tt.wantShort)
		}
	}
}

func TestModeString(t *testing.T) {
	if KernelMode.String() != "kernel" || UserMode.String() != "user" {
		t.Errorf("unexpected mode names: %v %v", KernelMode, UserMode)
	}
}

func TestCrashCausePlatform(t *testing.T) {
	for _, c := range Causes(CISC) {
		if c.Platform() != CISC {
			t.Errorf("%v.Platform() = %v, want CISC", c, c.Platform())
		}
	}
	for _, c := range Causes(RISC) {
		if c.Platform() != RISC {
			t.Errorf("%v.Platform() = %v, want RISC", c, c.Platform())
		}
	}
	if CauseNone.Platform() != 0 {
		t.Errorf("CauseNone.Platform() = %v, want 0", CauseNone.Platform())
	}
}

func TestCausesComplete(t *testing.T) {
	// Every defined cause (other than CauseNone) must appear in exactly one
	// platform's cause list — the paper's Tables 3 and 4 partition them.
	seen := make(map[CrashCause]int)
	for _, p := range []Platform{CISC, RISC} {
		causes := Causes(p)
		if len(causes) != 8 {
			t.Errorf("Causes(%v) has %d entries, want 8", p, len(causes))
		}
		for _, c := range causes {
			seen[c]++
		}
	}
	if len(seen) != int(numCrashCauses)-1 {
		t.Errorf("cause lists cover %d causes, want %d", len(seen), int(numCrashCauses)-1)
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("cause %v appears %d times", c, n)
		}
	}
}

func TestCrashCauseNames(t *testing.T) {
	for c := CrashCause(0); c < numCrashCauses; c++ {
		if s := c.String(); strings.HasPrefix(s, "CrashCause(") {
			t.Errorf("cause %d has no name (renders %q)", int(c), s)
		}
	}
}

func TestInvalidMemoryCauses(t *testing.T) {
	if got := InvalidMemoryCauses(CISC); len(got) != 2 {
		t.Errorf("CISC invalid-memory causes = %v, want NULL+BadPaging", got)
	}
	if got := InvalidMemoryCauses(RISC); len(got) != 1 || got[0] != CauseBadArea {
		t.Errorf("RISC invalid-memory causes = %v, want BadArea", got)
	}
}

func TestDebugUnitInstructionBreak(t *testing.T) {
	var d DebugUnit
	if d.Armed(BreakInstruction) {
		t.Fatal("zero DebugUnit reports armed")
	}
	d.Set(0, Breakpoint{Kind: BreakInstruction, Addr: 0x1000})
	if !d.Armed(BreakInstruction) {
		t.Fatal("Set did not arm the unit")
	}
	if got := d.HitInstruction(0x1000); got != 0 {
		t.Errorf("HitInstruction(0x1000) = %d, want 0", got)
	}
	if got := d.HitInstruction(0x1001); got != -1 {
		t.Errorf("HitInstruction(0x1001) = %d, want -1", got)
	}
	d.Clear(0)
	if d.Armed(BreakInstruction) {
		t.Fatal("Clear did not disarm the unit")
	}
}

func TestDebugUnitDataBreakOverlap(t *testing.T) {
	var d DebugUnit
	d.Set(1, Breakpoint{Kind: BreakData, Addr: 0x2000, Len: 4})
	tests := []struct {
		addr, size uint32
		want       int
	}{
		{0x2000, 4, 1},
		{0x2003, 1, 1},
		{0x1ffd, 4, 1}, // straddles the start
		{0x2004, 4, -1},
		{0x1ffc, 4, -1},
		{0x1fff, 2, 1},
	}
	for _, tt := range tests {
		if got := d.HitData(tt.addr, tt.size); got != tt.want {
			t.Errorf("HitData(0x%x, %d) = %d, want %d", tt.addr, tt.size, got, tt.want)
		}
	}
}

func TestDebugUnitDefaultDataLen(t *testing.T) {
	var d DebugUnit
	d.Set(0, Breakpoint{Kind: BreakData, Addr: 0x100})
	if got := d.Get(0).Len; got != 4 {
		t.Errorf("default data breakpoint length = %d, want 4", got)
	}
}

func TestDebugUnitClearAll(t *testing.T) {
	var d DebugUnit
	d.Set(0, Breakpoint{Kind: BreakInstruction, Addr: 1})
	d.Set(3, Breakpoint{Kind: BreakData, Addr: 8, Len: 1})
	d.ClearAll()
	if d.Armed(BreakInstruction) || d.Armed(BreakData) {
		t.Error("ClearAll left breakpoints armed")
	}
}

func TestCycleCounter(t *testing.T) {
	var c CycleCounter
	c.Advance(100)
	c.Mark()
	c.Advance(42)
	if got := c.Since(); got != 42 {
		t.Errorf("Since() = %d, want 42", got)
	}
	if got := c.Cycles(); got != 142 {
		t.Errorf("Cycles() = %d, want 142", got)
	}
	c.Reset()
	if c.Cycles() != 0 || c.Since() != 0 {
		t.Error("Reset did not zero the counter")
	}
}

func TestCrashCauseStrings(t *testing.T) {
	for _, p := range []Platform{CISC, RISC} {
		for _, c := range Causes(p) {
			if s := c.String(); s == "" || s == "CrashCause(0)" {
				t.Errorf("[%v] cause %d renders %q", p, int(c), s)
			}
		}
	}
	if got := CrashCause(99).String(); got != "CrashCause(99)" {
		t.Errorf("unknown cause = %q", got)
	}
	if got := CauseNone.String(); got == "" {
		t.Error("CauseNone renders empty")
	}
}

func TestPlatformStringUnknown(t *testing.T) {
	if got := Platform(9).String(); got == "" {
		t.Error("unknown platform renders empty")
	}
	if got := Platform(9).Short(); got == "" {
		t.Error("unknown platform short name empty")
	}
}

func TestCausesUnknownPlatformEmpty(t *testing.T) {
	if got := Causes(Platform(9)); got != nil {
		t.Errorf("Causes(unknown) = %v", got)
	}
	if got := InvalidMemoryCauses(Platform(9)); got != nil {
		t.Errorf("InvalidMemoryCauses(unknown) = %v", got)
	}
}
