package isa

// BreakKind distinguishes the two breakpoint flavors used by the injection
// campaigns: instruction breakpoints fire before the instruction at the
// target address executes; data breakpoints fire after a load or store
// touches the watched address range.
type BreakKind int

// Breakpoint kinds.
const (
	// BreakInstruction fires before executing the instruction at Addr.
	BreakInstruction BreakKind = iota + 1
	// BreakData fires after a data read or write overlapping [Addr, Addr+Len).
	BreakData
)

// DataAccess describes how a data breakpoint was triggered.
type DataAccess int

// Data access directions.
const (
	// AccessRead reports that the watched location was read.
	AccessRead DataAccess = iota + 1
	// AccessWrite reports that the watched location was written.
	AccessWrite
)

// Breakpoint is one entry in the processor's debug-register file. Real
// processors provide a handful of such registers (DR0-DR3 on the P4; IABR and
// DABR on the G4); the injector needs only one of each kind at a time but the
// unit supports several for generality.
type Breakpoint struct {
	Kind BreakKind
	Addr uint32
	Len  uint32 // watched byte length for data breakpoints (1, 2, or 4)

	// Enabled gates the breakpoint without clearing its configuration,
	// mirroring the DR7 local-enable bits.
	Enabled bool
}

// DebugSlots is the number of breakpoint slots in a DebugUnit (DR0-DR3 on
// the P4; generously more than the G4's IABR+DABR pair).
const DebugSlots = 4

// DebugUnit models the processor's debug-register facility. It is consulted
// by the execution engine on every instruction fetch and data access. The
// zero value is an empty, usable unit.
type DebugUnit struct {
	slots [DebugSlots]Breakpoint
	// armedInstr/armedData count enabled slots per kind so the per-step
	// Armed probe is a single compare, not a slot scan. Every slot
	// mutation goes through recount.
	armedInstr uint8
	armedData  uint8
}

// recount refreshes the per-kind armed counters from the slots.
func (d *DebugUnit) recount() {
	d.armedInstr, d.armedData = 0, 0
	for i := range d.slots {
		if !d.slots[i].Enabled {
			continue
		}
		switch d.slots[i].Kind {
		case BreakInstruction:
			d.armedInstr++
		case BreakData:
			d.armedData++
		}
	}
}

// Slots returns a copy of every breakpoint slot (checkpoint path).
func (d *DebugUnit) Slots() [DebugSlots]Breakpoint { return d.slots }

// SetSlots replaces every breakpoint slot (restore path).
func (d *DebugUnit) SetSlots(s [DebugSlots]Breakpoint) {
	d.slots = s
	d.recount()
}

// Set installs a breakpoint into the given slot (0..3) and enables it.
func (d *DebugUnit) Set(slot int, bp Breakpoint) {
	bp.Enabled = true
	if bp.Kind == BreakData && bp.Len == 0 {
		bp.Len = 4
	}
	d.slots[slot] = bp
	d.recount()
}

// Clear disables and erases the breakpoint in the given slot.
func (d *DebugUnit) Clear(slot int) {
	d.slots[slot] = Breakpoint{}
	d.recount()
}

// ClearAll erases every slot.
func (d *DebugUnit) ClearAll() {
	d.slots = [DebugSlots]Breakpoint{}
	d.armedInstr, d.armedData = 0, 0
}

// Get returns the breakpoint configured in the given slot.
func (d *DebugUnit) Get(slot int) Breakpoint {
	return d.slots[slot]
}

// HitInstruction reports the first enabled instruction-breakpoint slot whose
// address equals pc, or -1 if none match.
func (d *DebugUnit) HitInstruction(pc uint32) int {
	for i := range d.slots {
		bp := &d.slots[i]
		if bp.Enabled && bp.Kind == BreakInstruction && bp.Addr == pc {
			return i
		}
	}
	return -1
}

// HitData reports the first enabled data-breakpoint slot overlapping the
// access [addr, addr+size), or -1 if none match.
func (d *DebugUnit) HitData(addr, size uint32) int {
	for i := range d.slots {
		bp := &d.slots[i]
		if !bp.Enabled || bp.Kind != BreakData {
			continue
		}
		if addr < bp.Addr+bp.Len && bp.Addr < addr+size {
			return i
		}
	}
	return -1
}

// Armed reports whether any breakpoint of the given kind is enabled. The
// execution engine uses this to skip per-access checks when no campaign is
// active.
func (d *DebugUnit) Armed(kind BreakKind) bool {
	if kind == BreakInstruction {
		return d.armedInstr > 0
	}
	return d.armedData > 0
}

// CycleCounter is the performance-monitoring counter used to measure
// cycles-to-crash. It advances by the per-instruction cost table of the
// executing ISA plus the fixed exception-handling stage costs.
type CycleCounter struct {
	cycles uint64
	mark   uint64
}

// Advance adds n cycles.
func (c *CycleCounter) Advance(n uint64) { c.cycles += n }

// Cycles returns the total cycles since reset.
func (c *CycleCounter) Cycles() uint64 { return c.cycles }

// Mark records the current cycle count; Since returns cycles elapsed since
// the most recent Mark. The injector calls Mark at error activation and
// Since at crash time, yielding the paper's cycles-to-crash latency.
func (c *CycleCounter) Mark() { c.mark = c.cycles }

// Since returns the cycles elapsed since the last Mark.
func (c *CycleCounter) Since() uint64 { return c.cycles - c.mark }

// Reset zeroes the counter and its mark.
func (c *CycleCounter) Reset() { c.cycles, c.mark = 0, 0 }

// ClockState is the externally visible state of a CycleCounter, captured and
// reapplied by the checkpoint/restore subsystem.
type ClockState struct {
	Cycles uint64
	Mark   uint64
}

// State captures the counter for a checkpoint.
func (c *CycleCounter) State() ClockState { return ClockState{Cycles: c.cycles, Mark: c.mark} }

// SetState reapplies a previously captured counter state.
func (c *CycleCounter) SetState(s ClockState) { c.cycles, c.mark = s.Cycles, s.Mark }
