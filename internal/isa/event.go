package isa

// EventKind classifies what stopped or interrupted CPU execution. Both
// processor cores report the same event vocabulary so the machine layer and
// the injector can drive either platform.
type EventKind int

// Event kinds returned by a core's Step.
const (
	// EvNone means the instruction retired normally.
	EvNone EventKind = iota
	// EvException reports a hardware exception (Cause and FaultAddr valid).
	EvException
	// EvSyscall reports the software-interrupt / system-call instruction
	// (SysNo holds the syscall number register).
	EvSyscall
	// EvHalt reports the halt/idle instruction.
	EvHalt
	// EvInstrBreak reports an armed instruction breakpoint at the PC; the
	// instruction has NOT executed yet.
	EvInstrBreak
	// EvDataBreak reports a data breakpoint hit; the instruction HAS
	// completed (trap semantics, as on real debug registers).
	EvDataBreak
	// EvCtxSw reports the context-switch primitive (Prev/Next hold the
	// outgoing and incoming process-descriptor pointers).
	EvCtxSw
)

// Event describes why a core's Step returned.
type Event struct {
	Kind      EventKind
	Cause     CrashCause
	FaultAddr uint32
	Slot      int
	Access    DataAccess
	BreakAddr uint32
	SysNo     uint32
	Prev      uint32
	Next      uint32
}
