// Package isa defines the architecture-neutral vocabulary shared by the two
// simulated processors: platform identifiers, privilege modes, crash causes,
// debug (breakpoint) units, and the cycle counter used for crash-latency
// measurements.
//
// The two concrete ISAs live in internal/cisc (the "P4-class" processor:
// variable-length instructions, 8 general-purpose registers, 8/16/32-bit
// memory operands) and internal/risc (the "G4-class" processor: fixed 32-bit
// instructions, 32 general-purpose registers, word-oriented memory access).
package isa

import "fmt"

// Platform identifies one of the two simulated processor architectures.
type Platform int

// Platform values. They deliberately mirror the paper's two targets.
const (
	// CISC is the Pentium 4-class processor: variable-length instruction
	// encoding, eight general-purpose registers, byte/halfword/word memory
	// operands, and no architectural stack-overflow detection.
	CISC Platform = iota + 1
	// RISC is the PowerPC G4-class processor: fixed 32-bit instruction
	// encoding, thirty-two general-purpose registers, word-oriented memory
	// access, and a kernel stack-overflow checking wrapper on the exception
	// entry path.
	RISC
)

// String returns the human-readable platform name used in reports.
func (p Platform) String() string {
	switch p {
	case CISC:
		return "P4-class (CISC)"
	case RISC:
		return "G4-class (RISC)"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Short returns the compact platform tag used in tables and filenames.
func (p Platform) Short() string {
	switch p {
	case CISC:
		return "p4"
	case RISC:
		return "g4"
	default:
		return "??"
	}
}

// Mode is the processor privilege mode.
type Mode int

// Privilege modes.
const (
	// KernelMode runs with full privileges; faults here crash the system.
	KernelMode Mode = iota + 1
	// UserMode runs workload programs; faults here kill the process only.
	UserMode
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case KernelMode:
		return "kernel"
	case UserMode:
		return "user"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CrashCause is the crash subcategory recorded by the crash handler. The
// first group corresponds to the paper's Table 3 (Pentium 4); the second to
// Table 4 (PowerPC G4). A given machine only ever reports causes from its own
// platform's group.
type CrashCause int

// Crash causes, Table 3 (CISC/P4) then Table 4 (RISC/G4).
const (
	CauseNone CrashCause = iota

	// CISC (Table 3)
	CauseNULLPointer       // kernel NULL pointer de-reference
	CauseBadPaging         // page fault on a bad (non-NULL) page
	CauseInvalidInstr      // undefined opcode executed
	CauseGeneralProtection // segment limit / read-only write / bad selector
	CauseKernelPanic       // operating system detected an error
	CauseInvalidTSS        // task-state segment failure (NT-bit chains)
	CauseDivideError       // math error
	CauseBoundsTrap        // bounds checking error

	// RISC (Table 4)
	CauseBadArea      // kernel access of bad area (incl. NULL)
	CauseIllegalInstr // instruction not defined in the instruction set
	CauseStackOverflow
	CauseMachineCheck // processor-local bus error
	CauseAlignment    // operand not word-aligned
	CausePanic        // operating system detected an error
	CauseBusError     // protection fault
	CauseBadTrap      // unknown exception

	numCrashCauses
)

var crashCauseNames = map[CrashCause]string{
	CauseNone:              "none",
	CauseNULLPointer:       "NULL Pointer",
	CauseBadPaging:         "Bad Paging",
	CauseInvalidInstr:      "Invalid Instruction",
	CauseGeneralProtection: "General Protection Fault",
	CauseKernelPanic:       "Kernel Panic",
	CauseInvalidTSS:        "Invalid TSS",
	CauseDivideError:       "Divide Error",
	CauseBoundsTrap:        "Bounds Trap",
	CauseBadArea:           "Bad Area",
	CauseIllegalInstr:      "Illegal Instruction",
	CauseStackOverflow:     "Stack Overflow",
	CauseMachineCheck:      "Machine Check",
	CauseAlignment:         "Alignment",
	CausePanic:             "Panic!!!",
	CauseBusError:          "Bus Error",
	CauseBadTrap:           "Bad Trap",
}

// String returns the crash-cause label used in the paper's figures.
func (c CrashCause) String() string {
	if s, ok := crashCauseNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CrashCause(%d)", int(c))
}

// Platform reports which platform a crash cause belongs to.
func (c CrashCause) Platform() Platform {
	switch {
	case c >= CauseNULLPointer && c <= CauseBoundsTrap:
		return CISC
	case c >= CauseBadArea && c <= CauseBadTrap:
		return RISC
	default:
		return 0
	}
}

// Causes returns every crash cause defined for the given platform, in the
// order used by the paper's crash-cause tables.
func Causes(p Platform) []CrashCause {
	switch p {
	case CISC:
		return []CrashCause{
			CauseNULLPointer, CauseBadPaging, CauseInvalidInstr,
			CauseGeneralProtection, CauseKernelPanic, CauseInvalidTSS,
			CauseDivideError, CauseBoundsTrap,
		}
	case RISC:
		return []CrashCause{
			CauseBadArea, CauseIllegalInstr, CauseStackOverflow,
			CauseMachineCheck, CauseAlignment, CausePanic,
			CauseBusError, CauseBadTrap,
		}
	default:
		return nil
	}
}

// InvalidMemoryCauses returns the causes the paper groups under "invalid
// memory access" for the platform (Bad Paging + NULL Pointer on the P4;
// Bad Area on the G4).
func InvalidMemoryCauses(p Platform) []CrashCause {
	switch p {
	case CISC:
		return []CrashCause{CauseNULLPointer, CauseBadPaging}
	case RISC:
		return []CrashCause{CauseBadArea}
	default:
		return nil
	}
}
