// Package isa defines the architecture-neutral vocabulary shared by the
// simulated processors: platform identifiers, privilege modes, crash causes,
// debug (breakpoint) units, and the cycle counter used for crash-latency
// measurements.
//
// The two concrete ISAs live in internal/cisc (the "P4-class" processor:
// variable-length instructions, 8 general-purpose registers, 8/16/32-bit
// memory operands) and internal/risc (the "G4-class" processor: fixed 32-bit
// instructions, 32 general-purpose registers, word-oriented memory access).
//
// Platform-keyed facts (names, crash-cause tables, byte order) live in a
// registry seeded with the two built-in platforms. An extension platform
// registers its own PlatformInfo via RegisterPlatform; everything downstream
// (stats tables, cause attribution, layout rules) then resolves through the
// same lookups the built-ins use. Executable behavior (cores, decoders,
// snapshot codecs) is registered separately in internal/platform.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Platform identifies one simulated processor architecture.
type Platform int

// Built-in platform values. They deliberately mirror the paper's two targets.
const (
	// CISC is the Pentium 4-class processor: variable-length instruction
	// encoding, eight general-purpose registers, byte/halfword/word memory
	// operands, and no architectural stack-overflow detection.
	CISC Platform = iota + 1
	// RISC is the PowerPC G4-class processor: fixed 32-bit instruction
	// encoding, thirty-two general-purpose registers, word-oriented memory
	// access, and a kernel stack-overflow checking wrapper on the exception
	// entry path.
	RISC
)

// PlatformInfo is the architecture-neutral data a platform contributes to
// the registry: report labels, memory model facts, and its crash-cause
// vocabulary. All slices and maps are treated as immutable after
// registration.
type PlatformInfo struct {
	// Name is the human-readable platform name used in reports.
	Name string
	// Short is the compact tag used in tables and filenames.
	Short string
	// BigEndian selects the guest byte order.
	BigEndian bool
	// WordOrientedLayout selects the RISC-style stack-frame rule: every
	// single-element local gets a full word slot.
	WordOrientedLayout bool
	// Causes lists every crash cause the platform's crash handler can
	// report, in the order used by the paper's crash-cause tables.
	Causes []CrashCause
	// InvalidMemory lists the subset of Causes the paper groups under
	// "invalid memory access".
	InvalidMemory []CrashCause
	// CauseNames labels the platform's causes in reports.
	CauseNames map[CrashCause]string
}

var (
	platforms  = map[Platform]PlatformInfo{}
	causeOwner = map[CrashCause]Platform{}
	causeNames = map[CrashCause]string{}
)

// RegisterPlatform adds a platform's data to the registry. It panics on a
// duplicate platform, a zero platform value, a missing Name or Short, an
// attempt to re-register a built-in, or a crash cause already owned by
// another platform — registration bugs must fail loudly at init time, not
// surface as mislabeled tables later.
func RegisterPlatform(p Platform, info PlatformInfo) {
	if p == 0 {
		panic("isa: RegisterPlatform with zero Platform value")
	}
	if info.Name == "" || info.Short == "" {
		panic(fmt.Sprintf("isa: RegisterPlatform(%d) with empty Name or Short", int(p)))
	}
	if prev, ok := platforms[p]; ok {
		panic(fmt.Sprintf("isa: duplicate RegisterPlatform(%d): already registered as %q", int(p), prev.Name))
	}
	for _, c := range info.Causes {
		if c == CauseNone {
			panic(fmt.Sprintf("isa: platform %q claims CauseNone", info.Name))
		}
		if owner, ok := causeOwner[c]; ok {
			panic(fmt.Sprintf("isa: crash cause %d claimed by both %q and %q", int(c), platforms[owner].Name, info.Name))
		}
		if info.CauseNames[c] == "" {
			panic(fmt.Sprintf("isa: platform %q cause %d has no name", info.Name, int(c)))
		}
	}
	owned := map[CrashCause]bool{}
	for _, c := range info.Causes {
		owned[c] = true
	}
	for _, c := range info.InvalidMemory {
		if !owned[c] {
			panic(fmt.Sprintf("isa: platform %q invalid-memory cause %d is not in its cause list", info.Name, int(c)))
		}
	}
	platforms[p] = info
	for _, c := range info.Causes {
		causeOwner[c] = p
		causeNames[c] = info.CauseNames[c]
	}
}

// Platforms returns every registered platform identifier, in ascending
// order. The two built-ins are always present.
func Platforms() []Platform {
	out := make([]Platform, 0, len(platforms))
	for p := range platforms {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Registered reports whether p has been registered.
func Registered(p Platform) bool {
	_, ok := platforms[p]
	return ok
}

// String returns the human-readable platform name used in reports.
func (p Platform) String() string {
	if info, ok := platforms[p]; ok {
		return info.Name
	}
	return fmt.Sprintf("Platform(%d)", int(p))
}

// Short returns the compact platform tag used in tables and filenames.
func (p Platform) Short() string {
	if info, ok := platforms[p]; ok {
		return info.Short
	}
	return "??"
}

// ByteOrder returns the guest byte order for the platform. Unregistered
// platforms default to little-endian.
func ByteOrder(p Platform) binary.ByteOrder {
	if platforms[p].BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// WordOrientedLayout reports whether the platform uses the RISC-style
// word-slot stack layout rule.
func WordOrientedLayout(p Platform) bool {
	return platforms[p].WordOrientedLayout
}

// Mode is the processor privilege mode.
type Mode int

// Privilege modes.
const (
	// KernelMode runs with full privileges; faults here crash the system.
	KernelMode Mode = iota + 1
	// UserMode runs workload programs; faults here kill the process only.
	UserMode
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case KernelMode:
		return "kernel"
	case UserMode:
		return "user"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CrashCause is the crash subcategory recorded by the crash handler. The
// first group corresponds to the paper's Table 3 (Pentium 4); the second to
// Table 4 (PowerPC G4). A given machine only ever reports causes from its own
// platform's group. Extension platforms define their own causes starting at
// FirstExtensionCause.
type CrashCause int

// Crash causes, Table 3 (CISC/P4) then Table 4 (RISC/G4).
const (
	CauseNone CrashCause = iota

	// CISC (Table 3)
	CauseNULLPointer       // kernel NULL pointer de-reference
	CauseBadPaging         // page fault on a bad (non-NULL) page
	CauseInvalidInstr      // undefined opcode executed
	CauseGeneralProtection // segment limit / read-only write / bad selector
	CauseKernelPanic       // operating system detected an error
	CauseInvalidTSS        // task-state segment failure (NT-bit chains)
	CauseDivideError       // math error
	CauseBoundsTrap        // bounds checking error

	// RISC (Table 4)
	CauseBadArea      // kernel access of bad area (incl. NULL)
	CauseIllegalInstr // instruction not defined in the instruction set
	CauseStackOverflow
	CauseMachineCheck // processor-local bus error
	CauseAlignment    // operand not word-aligned
	CausePanic        // operating system detected an error
	CauseBusError     // protection fault
	CauseBadTrap      // unknown exception

	numCrashCauses
)

// FirstExtensionCause is the first CrashCause value free for extension
// platforms; values below it are reserved for the built-in tables.
const FirstExtensionCause = numCrashCauses

// String returns the crash-cause label used in the paper's figures.
func (c CrashCause) String() string {
	if c == CauseNone {
		return "none"
	}
	if s, ok := causeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CrashCause(%d)", int(c))
}

// Platform reports which platform a crash cause belongs to.
func (c CrashCause) Platform() Platform {
	return causeOwner[c]
}

// Causes returns every crash cause defined for the given platform, in the
// order used by the paper's crash-cause tables. The returned slice must not
// be modified.
func Causes(p Platform) []CrashCause {
	return platforms[p].Causes
}

// InvalidMemoryCauses returns the causes the paper groups under "invalid
// memory access" for the platform (Bad Paging + NULL Pointer on the P4;
// Bad Area on the G4). The returned slice must not be modified.
func InvalidMemoryCauses(p Platform) []CrashCause {
	return platforms[p].InvalidMemory
}

// The built-in platforms are seeded here rather than from internal/cisc and
// internal/risc so that packages importing isa alone (stats, kir, tests)
// always see the paper's two targets; the concrete packages register their
// executable Descriptors in internal/platform on top of this data. Because
// the built-ins are already present, RegisterPlatform's duplicate check also
// forbids overriding them.
func init() {
	RegisterPlatform(CISC, PlatformInfo{
		Name:  "P4-class (CISC)",
		Short: "p4",
		Causes: []CrashCause{
			CauseNULLPointer, CauseBadPaging, CauseInvalidInstr,
			CauseGeneralProtection, CauseKernelPanic, CauseInvalidTSS,
			CauseDivideError, CauseBoundsTrap,
		},
		InvalidMemory: []CrashCause{CauseNULLPointer, CauseBadPaging},
		CauseNames: map[CrashCause]string{
			CauseNULLPointer:       "NULL Pointer",
			CauseBadPaging:         "Bad Paging",
			CauseInvalidInstr:      "Invalid Instruction",
			CauseGeneralProtection: "General Protection Fault",
			CauseKernelPanic:       "Kernel Panic",
			CauseInvalidTSS:        "Invalid TSS",
			CauseDivideError:       "Divide Error",
			CauseBoundsTrap:        "Bounds Trap",
		},
	})
	RegisterPlatform(RISC, PlatformInfo{
		Name:               "G4-class (RISC)",
		Short:              "g4",
		BigEndian:          true,
		WordOrientedLayout: true,
		Causes: []CrashCause{
			CauseBadArea, CauseIllegalInstr, CauseStackOverflow,
			CauseMachineCheck, CauseAlignment, CausePanic,
			CauseBusError, CauseBadTrap,
		},
		InvalidMemory: []CrashCause{CauseBadArea},
		CauseNames: map[CrashCause]string{
			CauseBadArea:       "Bad Area",
			CauseIllegalInstr:  "Illegal Instruction",
			CauseStackOverflow: "Stack Overflow",
			CauseMachineCheck:  "Machine Check",
			CauseAlignment:     "Alignment",
			CausePanic:         "Panic!!!",
			CauseBusError:      "Bus Error",
			CauseBadTrap:       "Bad Trap",
		},
	})
}
