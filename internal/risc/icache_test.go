package risc

import (
	"encoding/binary"
	"testing"

	"kfi/internal/mem"
)

// Lockstep equivalence tests for the RISC predecode cache: a cached CPU and
// the reference interpreter run over identical memories and must agree on
// every observable each step, including after bit flips into already-cached
// code words.

const (
	icTestBase  = 0x1000
	icTestStack = 0xB000
)

func newLockstepCPU(t testing.TB, code []byte, predecode bool) *CPU {
	t.Helper()
	m := mem.New(1<<16, binary.BigEndian)
	m.Map(0x1000, 0x7000, mem.Present|mem.Writable)
	m.Map(0x8000, 0x4000, mem.Present|mem.Writable)
	copy(m.RawBytes(icTestBase, uint32(len(code))), code)
	c := NewCPU(m)
	c.PC = icTestBase
	c.R[SP] = icTestStack
	c.NoPredecode = !predecode
	return c
}

func lockstep(t *testing.T, code []byte, n int, mutate func(step int, m *mem.Memory)) {
	t.Helper()
	cached := newLockstepCPU(t, code, true)
	ref := newLockstepCPU(t, code, false)
	for i := 0; i < n; i++ {
		if mutate != nil {
			mutate(i, cached.Mem)
			mutate(i, ref.Mem)
		}
		evC, evR := cached.Step(), ref.Step()
		if evC != evR {
			t.Fatalf("step %d: event diverged: cached %+v, reference %+v", i, evC, evR)
		}
		if cached.PC != ref.PC || cached.LR != ref.LR || cached.CTR != ref.CTR ||
			cached.CR != ref.CR || cached.XER != ref.XER || cached.MSR != ref.MSR {
			t.Fatalf("step %d: state diverged: PC %#x/%#x CR %#x/%#x MSR %#x/%#x",
				i, cached.PC, ref.PC, cached.CR, ref.CR, cached.MSR, ref.MSR)
		}
		if cached.R != ref.R {
			t.Fatalf("step %d: registers diverged: %v vs %v", i, cached.R, ref.R)
		}
		if cached.SPR != ref.SPR {
			t.Fatalf("step %d: SPRs diverged", i)
		}
		if cached.Clk.Cycles() != ref.Clk.Cycles() {
			t.Fatalf("step %d: cycles diverged: %d vs %d", i, cached.Clk.Cycles(), ref.Clk.Cycles())
		}
	}
}

// loopProgram assembles a counting loop with a load/store pair.
func loopProgram(t testing.TB) []byte {
	t.Helper()
	a := NewAsm()
	a.Li(5, 0x2000)
	a.Label("top")
	a.Addi(3, 3, 1)
	a.Stw(3, 5, 0)
	a.Lwz(4, 5, 0)
	a.Cmpwi(3, 1<<14)
	a.B("top")
	code, err := a.Link(icTestBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestPredecodeLockstepClean(t *testing.T) {
	lockstep(t, loopProgram(t), 5000, nil)
}

// TestPredecodeLockstepFlipCachedWord flips a bit of an already-cached
// instruction word; the sparse RISC encoding often turns this into an
// illegal-instruction program exception, which must replay identically.
func TestPredecodeLockstepFlipCachedWord(t *testing.T) {
	for bit := uint(0); bit < 32; bit += 5 {
		bit := bit
		t.Run("", func(t *testing.T) {
			lockstep(t, loopProgram(t), 3000, func(step int, m *mem.Memory) {
				if step == 700 {
					// Flip inside the loop body word at offset 8 (stw).
					m.FlipBit(icTestBase+8+uint32(3-bit/8), bit%8)
				}
			})
		})
	}
}

// TestPredecodeLockstepSelfModify stores into the (cached) instruction
// stream: the very next fetch must observe the new word.
func TestPredecodeLockstepSelfModify(t *testing.T) {
	a := NewAsm()
	a.Li(5, icTestBase)
	a.Li32(6, 0x60000000) // ori 0,0,0 == nop, big-endian word
	a.Label("top")
	a.Addi(3, 3, 1)
	a.Stw(6, 5, 8) // overwrite this very addi with a nop on the first pass
	a.B("top")
	code, err := a.Link(icTestBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, code, 3000, nil)
}

// FuzzPredecodeEquivalence feeds arbitrary words as code and flips an
// arbitrary code bit mid-run, diffing cached vs reference execution.
func FuzzPredecodeEquivalence(f *testing.F) {
	f.Add(loopProgram(f), uint16(8), uint8(3), uint8(7))
	f.Add([]byte{0x7F, 0xE0, 0x00, 0x08}, uint16(0), uint8(26), uint8(0)) // trap word
	f.Fuzz(func(t *testing.T, code []byte, off uint16, bit, when uint8) {
		if len(code) == 0 || len(code) > 512 {
			t.Skip()
		}
		flipAddr := icTestBase + uint32(off)%uint32(len(code))
		flipStep := int(when % 64)
		lockstep(t, code, 128, func(step int, m *mem.Memory) {
			if step == flipStep {
				m.FlipBit(flipAddr, uint(bit&7))
			}
		})
	})
}
