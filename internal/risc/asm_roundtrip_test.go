package risc

// Round-trip tests: every assembler mnemonic the compiler backend relies on
// is executed on the CPU and its architectural effect asserted. These catch
// encoder/decoder disagreements that the cross-package differential tests
// would only surface as hard-to-localize kernel misbehaviour.

import (
	"encoding/binary"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/mem"
)

// runTo executes until the CPU reports an event, requiring a Halt-style
// breakpoint event set by the caller, and asserts registers along the way
// via the returned CPU.
func execSnippet(t *testing.T, build func(a *Asm)) *CPU {
	t.Helper()
	c := newTestCPU(t, func(a *Asm) {
		build(a)
		a.Sc() // terminator: syscall event ends the snippet
	})
	ev := run(t, c, 500)
	if ev.Kind != isa.EvSyscall {
		t.Fatalf("snippet ended with %v, want syscall terminator", ev)
	}
	return c
}

func TestIndexedLoadsAndStores(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Li32(10, tData)     // base
		a.Li(11, 0x40)        // index
		a.Li32(3, -559038737) // 0xDEADBEEF
		a.Stwx(3, 10, 11)
		a.Lwzx(4, 10, 11)
		a.Li(12, 0x80)
		a.Li(5, 0xAB)
		a.Stbx(5, 10, 12)
		a.Lbzx(6, 10, 12)
	})
	if c.R[4] != 0xDEADBEEF {
		t.Errorf("lwzx after stwx = 0x%X", c.R[4])
	}
	if got := c.Mem.RawRead(tData+0x40, 4); got != 0xDEADBEEF {
		t.Errorf("stwx wrote 0x%X", got)
	}
	if c.R[6] != 0xAB {
		t.Errorf("lbzx after stbx = 0x%X", c.R[6])
	}
}

func TestVariableShifts(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Li32(3, int32(-16)) // 0xFFFFFFF0
		a.Li(4, 4)
		a.Slw(5, 3, 4)  // logical left
		a.Srw(6, 3, 4)  // logical right
		a.Sraw(7, 3, 4) // arithmetic right
	})
	if c.R[5] != 0xFFFFFF00 {
		t.Errorf("slw = 0x%X", c.R[5])
	}
	if c.R[6] != 0x0FFFFFFF {
		t.Errorf("srw = 0x%X", c.R[6])
	}
	if c.R[7] != 0xFFFFFFFF {
		t.Errorf("sraw = 0x%X", c.R[7])
	}
}

func TestMrCopiesRegister(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Li32(3, 0x1234)
		a.Mr(9, 3)
	})
	if c.R[9] != 0x1234 {
		t.Errorf("mr = 0x%X", c.R[9])
	}
}

func TestBctrAndBctrl(t *testing.T) {
	// Branch through CTR both with and without link, as the compiled
	// syscall dispatcher does.
	c := execSnippet(t, func(a *Asm) {
		a.LiSym(9, "target", 0)
		a.Mtctr(9)
		a.Bctrl()
		a.Li(5, 7) // runs after the bctrl target returns
		a.Sc()
		a.Label("target")
		a.Li(4, 42)
		a.Blr()
	})
	if c.R[4] != 42 || c.R[5] != 7 {
		t.Errorf("bctrl path: r4=%d r5=%d", c.R[4], c.R[5])
	}

	c2 := newTestCPU(t, func(a *Asm) {
		a.LiSym(9, "t2", 0)
		a.Mtctr(9)
		a.Bctr() // no link: never comes back
		a.Li(3, 1)
		a.Sc()
		a.Label("t2")
		a.Li(3, 2)
		a.Sc()
	})
	if ev := run(t, c2, 100); ev.Kind != isa.EvSyscall {
		t.Fatalf("event %v", ev)
	}
	if c2.R[3] != 2 {
		t.Errorf("bctr fell through, r3=%d", c2.R[3])
	}
}

func TestConditionalBranchAliases(t *testing.T) {
	// Each alias observed from both sides of its condition.
	cases := []struct {
		name   string
		a, b   int32
		branch func(a *Asm, sym string)
		taken  bool
	}{
		{"beq taken", 5, 5, func(a *Asm, s string) { a.Beq(s) }, true},
		{"beq not", 5, 6, func(a *Asm, s string) { a.Beq(s) }, false},
		{"bne taken", 5, 6, func(a *Asm, s string) { a.Bne(s) }, true},
		{"bne not", 5, 5, func(a *Asm, s string) { a.Bne(s) }, false},
		{"bge taken", 7, 5, func(a *Asm, s string) { a.Bge(s) }, true},
		{"bge not", -1, 5, func(a *Asm, s string) { a.Bge(s) }, false},
		{"bgt taken", 7, 5, func(a *Asm, s string) { a.Bgt(s) }, true},
		{"bgt not", 5, 5, func(a *Asm, s string) { a.Bgt(s) }, false},
		{"ble taken", 5, 5, func(a *Asm, s string) { a.Ble(s) }, true},
		{"ble not", 7, 5, func(a *Asm, s string) { a.Ble(s) }, false},
		{"blt taken", -3, 5, func(a *Asm, s string) { a.Blt(s) }, true},
		{"blt not", 5, 5, func(a *Asm, s string) { a.Blt(s) }, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := execSnippet(t, func(a *Asm) {
				a.Li32(3, tt.a)
				a.Li32(4, tt.b)
				a.Cmpw(3, 4)
				tt.branch(a, "yes")
				a.Li(5, 0)
				a.B("out")
				a.Label("yes")
				a.Li(5, 1)
				a.Label("out")
			})
			want := uint32(0)
			if tt.taken {
				want = 1
			}
			if c.R[5] != want {
				t.Errorf("r5 = %d, want %d", c.R[5], want)
			}
		})
	}
}

func TestSyncIsyncAreNops(t *testing.T) {
	c := execSnippet(t, func(a *Asm) {
		a.Li(3, 9)
		a.Sync()
		a.Isync()
		a.Li(4, 10)
	})
	if c.R[3] != 9 || c.R[4] != 10 {
		t.Errorf("r3=%d r4=%d after sync/isync", c.R[3], c.R[4])
	}
}

func TestMtcrfRestoresCondition(t *testing.T) {
	// Save CR via mfcr, destroy it with a compare, restore with mtcrf, and
	// branch on the restored condition — the interrupt-return idiom.
	c := execSnippet(t, func(a *Asm) {
		a.Li(3, 1)
		a.Li(4, 2)
		a.Cmpw(3, 4) // LT
		a.Mfcr(9)    // save
		a.Cmpw(4, 3) // GT — clobbers
		a.Mtcrf(9)   // restore LT
		a.Blt("ok")
		a.Li(5, 0)
		a.B("out")
		a.Label("ok")
		a.Li(5, 1)
		a.Label("out")
	})
	if c.R[5] != 1 {
		t.Error("mtcrf did not restore the LT condition")
	}
}

func TestLiSymRelocation(t *testing.T) {
	// ha16/lo16 must compose to the exact symbol address, including the
	// sign-carry case where lo16 is negative.
	syms := map[string]uint32{"lowhalf": 0x00123456, "carry": 0x0001F000}
	for name, addr := range syms {
		a := NewAsm()
		a.LiSym(3, name, 4)
		a.Sc()
		code, err := a.Link(tCode, syms)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(1<<20, binary.BigEndian)
		m.Map(tCode, 0x1000, mem.Present)
		copy(m.RawBytes(tCode, uint32(len(code))), code)
		c := NewCPU(m)
		c.PC = tCode
		ev := run(t, c, 10)
		if ev.Kind != isa.EvSyscall {
			t.Fatalf("%s: %v", name, ev)
		}
		if c.R[3] != addr+4 {
			t.Errorf("LiSym(%s+4) = 0x%X, want 0x%X", name, c.R[3], addr+4)
		}
	}
}

func TestLiSymCarryPropagation(t *testing.T) {
	// An address whose low half has bit 15 set forces ha16 to add one to
	// the high half; a naive split would be off by 0x10000.
	a := NewAsm()
	a.LiSym(3, "hi", 0)
	a.Sc()
	code, err := a.Link(tCode, map[string]uint32{"hi": 0x00028000})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1<<20, binary.BigEndian)
	m.Map(tCode, 0x1000, mem.Present)
	copy(m.RawBytes(tCode, uint32(len(code))), code)
	c := NewCPU(m)
	c.PC = tCode
	if ev := run(t, c, 10); ev.Kind != isa.EvSyscall {
		t.Fatalf("%v", ev)
	}
	if c.R[3] != 0x00028000 {
		t.Errorf("LiSym with carry = 0x%X, want 0x28000", c.R[3])
	}
}

func TestLabelAddrAndLabels(t *testing.T) {
	a := NewAsm()
	a.Nop()
	a.Label("mid")
	a.Nop()
	if _, err := a.Link(0x100, nil); err != nil {
		t.Fatal(err)
	}
	// Label values are section offsets, independent of the link base.
	if got, ok := a.LabelAddr("mid"); !ok || got != 4 {
		t.Errorf("LabelAddr(mid) = 0x%X, %v", got, ok)
	}
	if _, ok := a.LabelAddr("absent"); ok {
		t.Error("LabelAddr found an undefined label")
	}
	all := a.Labels()
	if all["mid"] != 4 {
		t.Errorf("Labels() = %v", all)
	}
}

func TestCmplwiSetsUnsignedCR(t *testing.T) {
	// setCR0u path: unsigned compare orders 0xFFFFFFFF above 1.
	c := execSnippet(t, func(a *Asm) {
		a.Li32(3, -1) // 0xFFFFFFFF
		a.Cmplwi(3, 1)
		a.Bgt("big")
		a.Li(5, 0)
		a.B("out")
		a.Label("big")
		a.Li(5, 1)
		a.Label("out")
	})
	if c.R[5] != 1 {
		t.Error("cmplwi treated 0xFFFFFFFF as signed")
	}
	c2 := execSnippet(t, func(a *Asm) {
		a.Li(3, 1)
		a.Li32(4, -1)
		a.Cmplw(3, 4) // unsigned: 1 < 0xFFFFFFFF
		a.Blt("small")
		a.Li(5, 0)
		a.B("out")
		a.Label("small")
		a.Li(5, 1)
		a.Label("out")
	})
	if c2.R[5] != 1 {
		t.Error("cmplw treated operands as signed")
	}
}

func TestInterruptsEnabledTracksMSREE(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) { a.Nop() })
	c.MSR &^= MSREE
	if c.InterruptsEnabled() {
		t.Error("EE clear but InterruptsEnabled true")
	}
	c.MSR |= MSREE
	if !c.InterruptsEnabled() {
		t.Error("EE set but InterruptsEnabled false")
	}
}

func TestPendingDataBreakReporting(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li32(9, tData)
		a.Li(3, 5)
		a.Stw(3, 9, 0x10)
		a.Sc()
	})
	if _, _, _, ok := c.PendingDataBreak(); ok {
		t.Error("pending break before any watchpoint fired")
	}
	c.Debug.Set(0, isa.Breakpoint{Kind: isa.BreakData, Addr: tData + 0x10, Len: 4})
	ev := run(t, c, 20)
	if ev.Kind != isa.EvDataBreak {
		t.Fatalf("event %v, want data break", ev)
	}
	slot, access, addr, ok := c.PendingDataBreak()
	if !ok || slot != 0 || access != isa.AccessWrite || addr != tData+0x10 {
		t.Errorf("PendingDataBreak = (%d, %v, 0x%X, %v)", slot, access, addr, ok)
	}
}

func TestInstCostNonZero(t *testing.T) {
	a := NewAsm()
	a.Add(3, 4, 5)
	a.Lwz(3, 4, 0)
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(code); off += 4 {
		in, err := Decode(binary.BigEndian.Uint32(code[off:]))
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		if in.Cost() == 0 {
			t.Errorf("op %d has zero cost", in.Op)
		}
	}
}

func TestRegNameFormat(t *testing.T) {
	if got := RegName(14); got != "r14" {
		t.Errorf("RegName(14) = %q", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestAsmContractPanics(t *testing.T) {
	// The assembler treats misuse as a build bug, not a runtime error.
	mustPanic(t, "bad register", func() { NewAsm().Add(32, 0, 0) })
	mustPanic(t, "immediate overflow", func() { NewAsm().Addi(3, 0, 0x8000) })
	mustPanic(t, "duplicate label", func() {
		a := NewAsm()
		a.Label("x")
		a.Label("x")
	})
}

func TestDisasmCoversInstructionClasses(t *testing.T) {
	// Every emitted class must render a non-empty, distinctive mnemonic.
	a := NewAsm()
	a.Label("top")
	a.Add(3, 4, 5)
	a.Addi(3, 4, -2)
	a.Addis(3, 4, 1)
	a.Lwz(3, 4, 8)
	a.Stw(3, 4, 8)
	a.Lhz(3, 4, 2)
	a.Lha(3, 4, 2)
	a.Lbz(3, 4, 1)
	a.Stb(3, 4, 1)
	a.Lwzx(3, 4, 5)
	a.Stwx(3, 4, 5)
	a.Cmpwi(3, 7)
	a.Cmplwi(3, 7)
	a.Cmpw(3, 4)
	a.Cmplw(3, 4)
	a.Rlwinm(3, 4, 1, 0, 30)
	a.Srawi(3, 4, 2)
	a.Neg(3, 4)
	a.Mullw(3, 4, 5)
	a.Divw(3, 4, 5)
	a.Mflr(0)
	a.Mtlr(0)
	a.Mtctr(9)
	a.Mfspr(3, SprSPRG2)
	a.Mtspr(SprSPRG2, 3)
	a.Mfmsr(3)
	a.Mtmsr(3)
	a.Mfcr(3)
	a.Mtcrf(3)
	a.B("top")
	a.Bl("top")
	a.Beq("top")
	a.Bdnz("top")
	a.Blr()
	a.Bctr()
	a.Sc()
	a.Rfi()
	a.Twi(3, 4, 0)
	a.Sync()
	a.Isync()
	a.Nop()
	code, err := a.Link(0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for off := 0; off+4 <= len(code); off += 4 {
		w := binary.BigEndian.Uint32(code[off:])
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("word %d (0x%08X) does not decode: %v", off/4, w, err)
		}
		str := in.String()
		if str == "" {
			t.Errorf("word %d renders empty", off/4)
		}
		seen[str] = true
	}
	if len(seen) < 35 {
		t.Errorf("only %d distinct renderings across %d instructions", len(seen), len(code)/4)
	}
}

func TestSprNamesIncludeBATs(t *testing.T) {
	cases := map[uint16]string{
		SprIBAT0U: "IBAT0U",
		SprDBAT0U: "DBAT0U",
		543:       "DBAT3L",
		560:       "IBAT4U",
		575:       "DBAT7L",
		SprSDR1:   "SDR1",
		700:       "SPR700",
	}
	for n, want := range cases {
		if got := SprName(n); got != want {
			t.Errorf("SprName(%d) = %q, want %q", n, got, want)
		}
	}
}
