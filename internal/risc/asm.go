package risc

import (
	"encoding/binary"
	"fmt"
)

// Asm builds RISC machine code (a sequence of 32-bit big-endian words) with
// labels and relocations. Emitters panic on impossible operands; those are
// build bugs.
type Asm struct {
	words  []uint32
	labels map[string]uint32
	fixups []fixup
}

type relocKind int

const (
	relRel24 relocKind = iota + 1 // b/bl 24-bit word displacement
	relRel14                      // bc 14-bit word displacement
	relHa16                       // addis high half (adjusted for signed low)
	relLo16                       // addi/lwz low half
)

type fixup struct {
	index  uint32 // word index
	kind   relocKind
	target string
	addend int32
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]uint32)}
}

// Len returns the current code size in bytes.
func (a *Asm) Len() uint32 { return uint32(len(a.words)) * 4 }

// Label defines a label at the current position.
func (a *Asm) Label(name string) {
	if _, ok := a.labels[name]; ok {
		panic(fmt.Sprintf("risc: label %q defined twice", name))
	}
	a.labels[name] = a.Len()
}

// LabelAddr returns the offset of a previously defined label.
func (a *Asm) LabelAddr(name string) (uint32, bool) {
	v, ok := a.labels[name]
	return v, ok
}

// Labels returns all defined labels and their offsets.
func (a *Asm) Labels() map[string]uint32 {
	out := make(map[string]uint32, len(a.labels))
	for k, v := range a.labels {
		out[k] = v
	}
	return out
}

// Link resolves fixups against the load base and external symbols and returns
// big-endian machine code bytes.
func (a *Asm) Link(base uint32, syms map[string]uint32) ([]byte, error) {
	words := make([]uint32, len(a.words))
	copy(words, a.words)
	for _, f := range a.fixups {
		var target uint32
		if off, ok := a.labels[f.target]; ok {
			target = base + off
		} else if addr, ok := syms[f.target]; ok {
			target = addr
		} else {
			return nil, fmt.Errorf("risc: undefined symbol %q", f.target)
		}
		target += uint32(f.addend)
		pc := base + f.index*4
		switch f.kind {
		case relRel24:
			rel := int64(target) - int64(pc)
			if rel < -(1<<25) || rel >= 1<<25 || rel&3 != 0 {
				return nil, fmt.Errorf("risc: rel24 to %q out of range (%d)", f.target, rel)
			}
			words[f.index] |= uint32(rel) & 0x03FFFFFC
		case relRel14:
			rel := int64(target) - int64(pc)
			if rel < -(1<<15) || rel >= 1<<15 || rel&3 != 0 {
				return nil, fmt.Errorf("risc: rel14 to %q out of range (%d)", f.target, rel)
			}
			words[f.index] |= uint32(rel) & 0xFFFC
		case relHa16:
			ha := (target + 0x8000) >> 16
			words[f.index] |= ha & 0xFFFF
		case relLo16:
			words[f.index] |= target & 0xFFFF
		}
	}
	out := make([]byte, len(words)*4)
	for i, w := range words {
		binary.BigEndian.PutUint32(out[i*4:], w)
	}
	return out, nil
}

func (a *Asm) emit(w uint32) { a.words = append(a.words, w) }

func checkReg(r uint8) {
	if r >= NumRegs {
		panic(fmt.Sprintf("risc: bad register %d", r))
	}
}

func checkSimm(v int32) {
	if v < -0x8000 || v > 0x7FFF {
		panic(fmt.Sprintf("risc: simm16 out of range: %d", v))
	}
}

func dForm(opcd uint32, d, aReg uint8, imm uint32) uint32 {
	checkReg(d)
	checkReg(aReg)
	return opcd<<26 | uint32(d)<<21 | uint32(aReg)<<16 | imm&0xFFFF
}

func xForm(d, aReg, b uint8, xo uint32, rc bool) uint32 {
	checkReg(d)
	checkReg(aReg)
	checkReg(b)
	w := 31<<26 | uint32(d)<<21 | uint32(aReg)<<16 | uint32(b)<<11 | xo<<1
	if rc {
		w |= 1
	}
	return w
}

// --- D-form arithmetic ---

// Addi emits addi rD,rA,imm (li rD,imm when rA=0).
func (a *Asm) Addi(d, ra uint8, imm int32) { checkSimm(imm); a.emit(dForm(14, d, ra, uint32(imm))) }

// Li emits li rD,imm.
func (a *Asm) Li(d uint8, imm int32) { a.Addi(d, 0, imm) }

// Addis emits addis rD,rA,imm (lis when rA=0).
func (a *Asm) Addis(d, ra uint8, imm int32) { checkSimm(imm); a.emit(dForm(15, d, ra, uint32(imm))) }

// Lis emits lis rD,imm.
func (a *Asm) Lis(d uint8, imm int32) { a.Addis(d, 0, imm) }

// LiSym loads the 32-bit address of sym+addend into rD using lis/addi with
// ha16/lo16 relocations (the PowerPC large-constant idiom).
func (a *Asm) LiSym(d uint8, sym string, addend int32) {
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relHa16, target: sym, addend: addend})
	a.emit(dForm(15, d, 0, 0))
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relLo16, target: sym, addend: addend})
	a.emit(dForm(14, d, d, 0))
}

// Li32 loads an arbitrary 32-bit constant (lis/ori or a single addi).
func (a *Asm) Li32(d uint8, v int32) {
	if v >= -0x8000 && v <= 0x7FFF {
		a.Li(d, v)
		return
	}
	hi := uint32(v) >> 16
	lo := uint32(v) & 0xFFFF
	a.Lis(d, int32(int16(hi)))
	if lo != 0 {
		a.Ori(d, d, uint16(lo))
	}
}

// Mulli emits mulli rD,rA,imm.
func (a *Asm) Mulli(d, ra uint8, imm int32) { checkSimm(imm); a.emit(dForm(7, d, ra, uint32(imm))) }

// Cmpwi emits cmpwi rA,imm.
func (a *Asm) Cmpwi(ra uint8, imm int32) { checkSimm(imm); a.emit(dForm(11, 0, ra, uint32(imm))) }

// Cmplwi emits cmplwi rA,imm.
func (a *Asm) Cmplwi(ra uint8, imm uint16) { a.emit(dForm(10, 0, ra, uint32(imm))) }

// Ori emits ori rA,rS,imm. Ori(0,0,0) is the canonical nop.
func (a *Asm) Ori(ra, rs uint8, imm uint16) { a.emit(dForm(24, rs, ra, uint32(imm))) }

// Oris emits oris rA,rS,imm.
func (a *Asm) Oris(ra, rs uint8, imm uint16) { a.emit(dForm(25, rs, ra, uint32(imm))) }

// Xori emits xori rA,rS,imm.
func (a *Asm) Xori(ra, rs uint8, imm uint16) { a.emit(dForm(26, rs, ra, uint32(imm))) }

// AndiRc emits andi. rA,rS,imm (always records to CR0).
func (a *Asm) AndiRc(ra, rs uint8, imm uint16) { a.emit(dForm(28, rs, ra, uint32(imm))) }

// Nop emits ori 0,0,0.
func (a *Asm) Nop() { a.Ori(0, 0, 0) }

// --- loads/stores ---

// Lwz emits lwz rD,d(rA).
func (a *Asm) Lwz(d, ra uint8, off int32) { checkSimm(off); a.emit(dForm(32, d, ra, uint32(off))) }

// Lbz emits lbz rD,d(rA).
func (a *Asm) Lbz(d, ra uint8, off int32) { checkSimm(off); a.emit(dForm(34, d, ra, uint32(off))) }

// Lhz emits lhz rD,d(rA).
func (a *Asm) Lhz(d, ra uint8, off int32) { checkSimm(off); a.emit(dForm(40, d, ra, uint32(off))) }

// Lha emits lha rD,d(rA).
func (a *Asm) Lha(d, ra uint8, off int32) { checkSimm(off); a.emit(dForm(42, d, ra, uint32(off))) }

// Stw emits stw rS,d(rA).
func (a *Asm) Stw(s, ra uint8, off int32) { checkSimm(off); a.emit(dForm(36, s, ra, uint32(off))) }

// Stwu emits stwu rS,d(rA) — the frame-push idiom.
func (a *Asm) Stwu(s, ra uint8, off int32) {
	if ra == 0 {
		panic("risc: stwu with rA=0")
	}
	checkSimm(off)
	a.emit(dForm(37, s, ra, uint32(off)))
}

// Stb emits stb rS,d(rA).
func (a *Asm) Stb(s, ra uint8, off int32) { checkSimm(off); a.emit(dForm(38, s, ra, uint32(off))) }

// Sth emits sth rS,d(rA).
func (a *Asm) Sth(s, ra uint8, off int32) { checkSimm(off); a.emit(dForm(44, s, ra, uint32(off))) }

// Lwzx emits lwzx rD,rA,rB.
func (a *Asm) Lwzx(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoLWZX, false)) }

// Lbzx emits lbzx rD,rA,rB.
func (a *Asm) Lbzx(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoLBZX, false)) }

// Lhax emits lhax rD,rA,rB.
func (a *Asm) Lhax(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoLHAX, false)) }

// Stwx emits stwx rS,rA,rB.
func (a *Asm) Stwx(s, ra, rb uint8) { a.emit(xForm(s, ra, rb, xoSTWX, false)) }

// Stbx emits stbx rS,rA,rB.
func (a *Asm) Stbx(s, ra, rb uint8) { a.emit(xForm(s, ra, rb, xoSTBX, false)) }

// --- X-form ALU ---

// Add emits add rD,rA,rB.
func (a *Asm) Add(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoADD, false)) }

// Subf emits subf rD,rA,rB (rD = rB - rA).
func (a *Asm) Subf(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoSUBF, false)) }

// Neg emits neg rD,rA.
func (a *Asm) Neg(d, ra uint8) { a.emit(xForm(d, ra, 0, xoNEG, false)) }

// Mullw emits mullw rD,rA,rB.
func (a *Asm) Mullw(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoMULLW, false)) }

// Divw emits divw rD,rA,rB (rD = rA / rB).
func (a *Asm) Divw(d, ra, rb uint8) { a.emit(xForm(d, ra, rb, xoDIVW, false)) }

// And emits and rA,rS,rB.
func (a *Asm) And(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoAND, false)) }

// Or emits or rA,rS,rB.
func (a *Asm) Or(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoOR, false)) }

// Mr emits mr rA,rS (or rA,rS,rS).
func (a *Asm) Mr(ra, rs uint8) { a.Or(ra, rs, rs) }

// Xor emits xor rA,rS,rB.
func (a *Asm) Xor(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoXOR, false)) }

// Nor emits nor rA,rS,rB (not = nor rA,rS,rS).
func (a *Asm) Nor(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoNOR, false)) }

// Slw emits slw rA,rS,rB.
func (a *Asm) Slw(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoSLW, false)) }

// Srw emits srw rA,rS,rB.
func (a *Asm) Srw(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoSRW, false)) }

// Sraw emits sraw rA,rS,rB.
func (a *Asm) Sraw(ra, rs, rb uint8) { a.emit(xForm(rs, ra, rb, xoSRAW, false)) }

// Srawi emits srawi rA,rS,sh.
func (a *Asm) Srawi(ra, rs, sh uint8) { a.emit(xForm(rs, ra, sh&31, xoSRAWI, false)) }

// Extsb emits extsb rA,rS.
func (a *Asm) Extsb(ra, rs uint8) { a.emit(xForm(rs, ra, 0, xoEXTSB, false)) }

// Extsh emits extsh rA,rS.
func (a *Asm) Extsh(ra, rs uint8) { a.emit(xForm(rs, ra, 0, xoEXTSH, false)) }

// Rlwinm emits rlwinm rA,rS,sh,mb,me.
func (a *Asm) Rlwinm(ra, rs, sh, mb, me uint8) {
	checkReg(ra)
	checkReg(rs)
	a.emit(21<<26 | uint32(rs)<<21 | uint32(ra)<<16 | uint32(sh&31)<<11 |
		uint32(mb&31)<<6 | uint32(me&31)<<1)
}

// Slwi emits slwi rA,rS,n (rlwinm shorthand).
func (a *Asm) Slwi(ra, rs, n uint8) { a.Rlwinm(ra, rs, n, 0, 31-n) }

// Srwi emits srwi rA,rS,n.
func (a *Asm) Srwi(ra, rs, n uint8) { a.Rlwinm(ra, rs, 32-n, n, 31) }

// Cmpw emits cmpw rA,rB.
func (a *Asm) Cmpw(ra, rb uint8) { a.emit(xForm(0, ra, rb, xoCMPW, false)) }

// Cmplw emits cmplw rA,rB.
func (a *Asm) Cmplw(ra, rb uint8) { a.emit(xForm(0, ra, rb, xoCMPLW, false)) }

// --- branches ---

// B emits b sym.
func (a *Asm) B(sym string) {
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relRel24, target: sym})
	a.emit(18 << 26)
}

// Bl emits bl sym (branch and link).
func (a *Asm) Bl(sym string) {
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relRel24, target: sym})
	a.emit(18<<26 | 1)
}

// Blr emits blr.
func (a *Asm) Blr() { a.emit(19<<26 | 20<<21 | xo19BCLR<<1) }

// Bctrl emits bctrl (indirect call via CTR).
func (a *Asm) Bctrl() { a.emit(19<<26 | 20<<21 | xo19BCCTR<<1 | 1) }

// Bctr emits bctr.
func (a *Asm) Bctr() { a.emit(19<<26 | 20<<21 | xo19BCCTR<<1) }

// Condition-code names for Bc: the CR0 bit tested.
const (
	BiLT = 0
	BiGT = 1
	BiEQ = 2
	BiSO = 3
)

// Bc emits a conditional branch to sym. branchIfSet selects branch-on-true
// (BO=12) versus branch-on-false (BO=4) of CR0 bit bi.
func (a *Asm) Bc(branchIfSet bool, bi uint8, sym string) {
	bo := uint32(4)
	if branchIfSet {
		bo = 12
	}
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relRel14, target: sym})
	a.emit(16<<26 | bo<<21 | uint32(bi&31)<<16)
}

// Beq emits beq sym.
func (a *Asm) Beq(sym string) { a.Bc(true, BiEQ, sym) }

// Bne emits bne sym.
func (a *Asm) Bne(sym string) { a.Bc(false, BiEQ, sym) }

// Blt emits blt sym.
func (a *Asm) Blt(sym string) { a.Bc(true, BiLT, sym) }

// Bge emits bge sym.
func (a *Asm) Bge(sym string) { a.Bc(false, BiLT, sym) }

// Bgt emits bgt sym.
func (a *Asm) Bgt(sym string) { a.Bc(true, BiGT, sym) }

// Ble emits ble sym.
func (a *Asm) Ble(sym string) { a.Bc(false, BiGT, sym) }

// Bdnz emits bdnz sym (decrement CTR, branch if nonzero).
func (a *Asm) Bdnz(sym string) {
	a.fixups = append(a.fixups, fixup{index: uint32(len(a.words)), kind: relRel14, target: sym})
	a.emit(16<<26 | 16<<21)
}

// --- system ---

// Sc emits sc.
func (a *Asm) Sc() { a.emit(17<<26 | 2) }

// Rfi emits rfi.
func (a *Asm) Rfi() { a.emit(19<<26 | xo19RFI<<1) }

// Isync emits isync.
func (a *Asm) Isync() { a.emit(19<<26 | xo19ISYNC<<1) }

// Sync emits sync.
func (a *Asm) Sync() { a.emit(xForm(0, 0, 0, xoSYNC, false)) }

// Twi emits twi TO,rA,imm (trap word immediate; TO=31 traps unconditionally).
func (a *Asm) Twi(to, ra uint8, imm int32) {
	checkSimm(imm)
	a.emit(dForm(3, to&31, ra, uint32(imm)))
}

// Trap emits the unconditional trap tw 31,r0,r0 — the kernel BUG() shape.
func (a *Asm) Trap() { a.emit(xForm(31, 0, 0, xoTW, false)) }

// IllegalWord emits .long 0 — the classic illegal-instruction BUG marker.
func (a *Asm) IllegalWord() { a.emit(0) }

// Mfspr emits mfspr rD,spr.
func (a *Asm) Mfspr(d uint8, spr uint16) {
	checkReg(d)
	a.emit(31<<26 | uint32(d)<<21 | uint32(spr&0x1F)<<16 | uint32(spr>>5&0x1F)<<11 | xoMFSPR<<1)
}

// Mtspr emits mtspr spr,rS.
func (a *Asm) Mtspr(spr uint16, s uint8) {
	checkReg(s)
	a.emit(31<<26 | uint32(s)<<21 | uint32(spr&0x1F)<<16 | uint32(spr>>5&0x1F)<<11 | xoMTSPR<<1)
}

// Mflr emits mflr rD.
func (a *Asm) Mflr(d uint8) { a.Mfspr(d, SprLR) }

// Mtlr emits mtlr rS.
func (a *Asm) Mtlr(s uint8) { a.Mtspr(SprLR, s) }

// Mfctr emits mfctr rD.
func (a *Asm) Mfctr(d uint8) { a.Mfspr(d, SprCTR) }

// Mtctr emits mtctr rS.
func (a *Asm) Mtctr(s uint8) { a.Mtspr(SprCTR, s) }

// Mfmsr emits mfmsr rD.
func (a *Asm) Mfmsr(d uint8) { a.emit(xForm(d, 0, 0, xoMFMSR, false)) }

// Mtmsr emits mtmsr rS.
func (a *Asm) Mtmsr(s uint8) { a.emit(xForm(s, 0, 0, xoMTMSR, false)) }

// Mfcr emits mfcr rD.
func (a *Asm) Mfcr(d uint8) { a.emit(xForm(d, 0, 0, xoMFCR, false)) }

// Mtcrf emits mtcrf 0xff,rS (full condition-register restore).
func (a *Asm) Mtcrf(s uint8) { a.emit(xForm(s, 0, 0, xoMTCRF, false)) }

// CtxSw emits the simulator context-switch primitive ctxsw rA,rB.
func (a *Asm) CtxSw(prev, next uint8) { a.emit(xForm(0, prev, next, xoCTXSW, false)) }

// Halt emits the simulator idle primitive.
func (a *Asm) Halt() { a.emit(xForm(0, 0, 0, xoHALT, false)) }
