// Package risc implements the "G4-class" processor: a fixed-width 32-bit RISC
// instruction set architecture modeled on the 32-bit PowerPC (MPC7455),
// with thirty-two general-purpose registers, a link register, word-oriented
// memory access with alignment checking, supervisor-model special-purpose
// registers (MSR, SRR0/1, SPRG0-3, HID0, BATs, performance monitor), and
// PowerPC-style exception classification (bad area / illegal instruction /
// alignment / machine check / trap).
//
// The implemented subset uses genuine PowerPC-32 encodings, so single-bit
// instruction errors behave as on real silicon — e.g. one flipped bit turns
// mflr r0 (0x7C0802A6) into lhax r0,r8,r0 (0x7C0802AE), the paper's
// Figure 15 case study.
package risc

import "fmt"

// Register conventions (PowerPC SVR4 ABI subset used by the compiler):
// r0 scratch (reads as literal 0 in some address forms), r1 stack pointer,
// r2 reserved, r3-r10 arguments/return, r11-r12 scratch, r13-r29
// callee-saved, r30-r31 frame temporaries.
const (
	R0 = iota
	SP // r1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	// ... r14-r31 are addressed numerically.
	NumRegs = 32
)

// RegName returns the conventional register name.
func RegName(r uint8) string { return fmt.Sprintf("r%d", r) }

// Op identifies the semantic operation of a decoded instruction.
type Op uint16

// Semantic operations.
const (
	OpIllegal Op = iota

	// D-form.
	OpADDI
	OpADDIS
	OpMULLI
	OpCMPLWI
	OpCMPWI
	OpORI
	OpORIS
	OpXORI
	OpANDIRc
	OpLWZ
	OpLBZ
	OpLHZ
	OpLHA
	OpSTW
	OpSTWU
	OpSTB
	OpSTH
	OpTWI

	// Branches and system.
	OpB
	OpBC
	OpBCLR
	OpBCCTR
	OpSC
	OpRFI
	OpISYNC
	OpRLWINM

	// X-form (primary opcode 31).
	OpCMPW
	OpCMPLW
	OpTW
	OpSUBF
	OpNEG
	OpADD
	OpMULLW
	OpDIVW
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLW
	OpSRW
	OpSRAW
	OpSRAWI
	OpEXTSB
	OpEXTSH
	OpLWZX
	OpLBZX
	OpLHZX
	OpLHAX
	OpSTWX
	OpSTBX
	OpSTHX
	OpMFSPR
	OpMTSPR
	OpMFMSR
	OpMTMSR
	OpMFCR
	OpMTCRF
	OpSYNC
	// Simulator-specific extensions in reserved XO space: the guest kernel's
	// context-switch and idle primitives.
	OpCTXSW
	OpHALT

	numOps
)

// Extended opcodes under primary opcode 31 (real PowerPC XO values, plus two
// simulator extensions in reserved encoding space).
const (
	xoCMPW  = 0
	xoTW    = 4
	xoSUBF  = 40
	xoCMPLW = 32
	xoNEG   = 104
	xoMULLW = 235
	xoADD   = 266
	xoDIVW  = 491
	xoAND   = 28
	xoOR    = 444
	xoXOR   = 316
	xoNOR   = 124
	xoSLW   = 24
	xoSRW   = 536
	xoSRAW  = 792
	xoSRAWI = 824
	xoEXTSB = 954
	xoEXTSH = 922
	xoLWZX  = 23
	xoLBZX  = 87
	xoLHZX  = 279
	xoLHAX  = 343
	xoSTWX  = 151
	xoSTBX  = 215
	xoSTHX  = 407
	xoMFSPR = 339
	xoMTSPR = 467
	xoMFMSR = 83
	xoMTMSR = 146
	xoMFCR  = 19
	xoMTCRF = 144
	xoSYNC  = 598
	xoCTXSW = 1000 // simulator extension
	xoHALT  = 1001 // simulator extension
)

// Extended opcodes under primary opcode 19.
const (
	xo19BCLR  = 16
	xo19RFI   = 50
	xo19ISYNC = 150
	xo19BCCTR = 528
)

// Special-purpose register numbers (PowerPC SPR space).
const (
	SprXER    = 1
	SprLR     = 8
	SprCTR    = 9
	SprDSISR  = 18
	SprDAR    = 19
	SprDEC    = 22
	SprSDR1   = 25
	SprSRR0   = 26
	SprSRR1   = 27
	SprSPRG0  = 272
	SprSPRG1  = 273
	SprSPRG2  = 274 // kernel stack anchor used by the exception entry path
	SprSPRG3  = 275
	SprEAR    = 282
	SprTBL    = 284
	SprTBU    = 285
	SprPVR    = 287
	SprIBAT0U = 528  // kernel instruction BAT (upper)
	SprDBAT0U = 536  // kernel data BAT (upper)
	SprHID0   = 1008 // cache/branch-unit control (BTIC enable lives here)
	SprHID1   = 1009
	SprIABR   = 1010
	SprDABR   = 1013
)

// MSR bit masks (PowerPC layout).
const (
	MSREE = 0x00008000 // external interrupt enable
	MSRPR = 0x00004000 // problem state (1 = user mode)
	MSRME = 0x00001000 // machine check enable
	MSRIR = 0x00000020 // instruction address translation
	MSRDR = 0x00000010 // data address translation
)

// HID0 bit masks (subset).
const (
	HID0BTIC = 0x00000020 // branch target instruction cache enable
	HID0ICE  = 0x00008000
	HID0DCE  = 0x00004000
)

// CR0 field masks within the 32-bit condition register (CR0 occupies the
// four most significant bits, PowerPC bit order LT GT EQ SO).
const (
	CR0LT = 0x80000000
	CR0GT = 0x40000000
	CR0EQ = 0x20000000
	CR0SO = 0x10000000
)

// opName maps semantic ops to mnemonics for the disassembler.
var opName = map[Op]string{
	OpADDI: "addi", OpADDIS: "addis", OpMULLI: "mulli",
	OpCMPLWI: "cmplwi", OpCMPWI: "cmpwi",
	OpORI: "ori", OpORIS: "oris", OpXORI: "xori", OpANDIRc: "andi.",
	OpLWZ: "lwz", OpLBZ: "lbz", OpLHZ: "lhz", OpLHA: "lha",
	OpSTW: "stw", OpSTWU: "stwu", OpSTB: "stb", OpSTH: "sth",
	OpTWI: "twi", OpB: "b", OpBC: "bc", OpBCLR: "bclr", OpBCCTR: "bcctr",
	OpSC: "sc", OpRFI: "rfi", OpISYNC: "isync", OpRLWINM: "rlwinm",
	OpCMPW: "cmpw", OpCMPLW: "cmplw", OpTW: "tw",
	OpSUBF: "subf", OpNEG: "neg", OpADD: "add", OpMULLW: "mullw",
	OpDIVW: "divw", OpAND: "and", OpOR: "or", OpXOR: "xor", OpNOR: "nor",
	OpSLW: "slw", OpSRW: "srw", OpSRAW: "sraw", OpSRAWI: "srawi",
	OpEXTSB: "extsb", OpEXTSH: "extsh",
	OpLWZX: "lwzx", OpLBZX: "lbzx", OpLHZX: "lhzx", OpLHAX: "lhax",
	OpSTWX: "stwx", OpSTBX: "stbx", OpSTHX: "sthx",
	OpMFSPR: "mfspr", OpMTSPR: "mtspr", OpMFMSR: "mfmsr", OpMTMSR: "mtmsr",
	OpMFCR: "mfcr", OpMTCRF: "mtcrf", OpSYNC: "sync",
	OpCTXSW: "ctxsw", OpHALT: "halt",
}

// Name returns the mnemonic for an op.
func (o Op) Name() string {
	if s, ok := opName[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", o)
}

// cost returns the cycle cost for an op.
func costOf(o Op) uint8 {
	switch o {
	case OpLWZ, OpLBZ, OpLHZ, OpLHA, OpSTW, OpSTWU, OpSTB, OpSTH,
		OpLWZX, OpLBZX, OpLHZX, OpLHAX, OpSTWX, OpSTBX, OpSTHX:
		return 2
	case OpMULLW, OpMULLI:
		return 3
	case OpDIVW:
		return 19
	case OpSC, OpRFI:
		return 6
	case OpMFSPR, OpMTSPR, OpMFMSR, OpMTMSR:
		return 2
	case OpB, OpBC, OpBCLR, OpBCCTR:
		return 2
	case OpCTXSW:
		return 8
	default:
		return 1
	}
}
