package risc

import (
	"errors"
	"fmt"
)

// Inst is one decoded 32-bit instruction.
type Inst struct {
	Op  Op
	Raw uint32
	RD  uint8 // D/S field (bits 21-25)
	RA  uint8
	RB  uint8
	SH  uint8 // rlwinm/srawi shift
	MB  uint8
	ME  uint8
	BO  uint8
	BI  uint8
	SPR uint16
	TO  uint8
	// SIMM is the sign-extended 16-bit immediate or branch displacement in
	// bytes (already shifted for branches).
	SIMM int32
	UIMM uint32
	LK   bool // link bit
	AA   bool // absolute bit
	Rc   bool // record bit
}

// ErrIllegal reports an encoding outside the implemented instruction set —
// the program-check / illegal-instruction condition.
var ErrIllegal = errors.New("risc: illegal instruction")

func signExt16(v uint32) int32 { return int32(int16(v)) }

// Decode decodes one 32-bit instruction word. It never panics; unknown
// encodings return ErrIllegal.
func Decode(raw uint32) (Inst, error) {
	in := Inst{Raw: raw}
	in.RD = uint8(raw >> 21 & 0x1F)
	in.RA = uint8(raw >> 16 & 0x1F)
	in.RB = uint8(raw >> 11 & 0x1F)
	in.SIMM = signExt16(raw & 0xFFFF)
	in.UIMM = raw & 0xFFFF

	opcd := raw >> 26
	switch opcd {
	case 3:
		in.Op, in.TO = OpTWI, in.RD
	case 7:
		in.Op = OpMULLI
	case 10:
		in.Op = OpCMPLWI
		if in.RD != 0 { // only CR field 0; the reserved and L bits must be 0
			return in, ErrIllegal
		}
	case 11:
		in.Op = OpCMPWI
		if in.RD != 0 {
			return in, ErrIllegal
		}
	case 14:
		in.Op = OpADDI
	case 15:
		in.Op = OpADDIS
	case 16:
		in.Op = OpBC
		in.BO, in.BI = in.RD, in.RA
		in.SIMM = int32(int16(raw&0xFFFC)) &^ 3
		in.AA = raw&2 != 0
		in.LK = raw&1 != 0
	case 17:
		// sc has every field reserved: only the canonical encoding decodes.
		if raw != 0x44000002 {
			return in, ErrIllegal
		}
		in.Op = OpSC
	case 18:
		in.Op = OpB
		li := raw & 0x03FFFFFC
		if li&0x02000000 != 0 {
			li |= 0xFC000000 // sign extend 26-bit field
		}
		in.SIMM = int32(li)
		in.AA = raw&2 != 0
		in.LK = raw&1 != 0
	case 19:
		switch raw >> 1 & 0x3FF {
		case xo19BCLR:
			in.Op = OpBCLR
			in.BO, in.BI = in.RD, in.RA
			in.LK = raw&1 != 0
			if in.RB != 0 { // the BH/reserved field must be 0
				return in, ErrIllegal
			}
		case xo19BCCTR:
			in.Op = OpBCCTR
			in.BO, in.BI = in.RD, in.RA
			in.LK = raw&1 != 0
			if in.RB != 0 {
				return in, ErrIllegal
			}
		case xo19RFI:
			in.Op = OpRFI
			if in.RD != 0 || in.RA != 0 || in.RB != 0 {
				return in, ErrIllegal
			}
		case xo19ISYNC:
			in.Op = OpISYNC
			if in.RD != 0 || in.RA != 0 || in.RB != 0 {
				return in, ErrIllegal
			}
		default:
			return in, ErrIllegal
		}
	case 21:
		in.Op = OpRLWINM
		in.SH = in.RB
		in.MB = uint8(raw >> 6 & 0x1F)
		in.ME = uint8(raw >> 1 & 0x1F)
		in.Rc = raw&1 != 0
	case 24:
		in.Op = OpORI
	case 25:
		in.Op = OpORIS
	case 26:
		in.Op = OpXORI
	case 28:
		in.Op, in.Rc = OpANDIRc, true
	case 31:
		xo := raw >> 1 & 0x3FF
		in.Rc = raw&1 != 0
		switch xo {
		case xoCMPW:
			in.Op = OpCMPW
			if in.RD != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoCMPLW:
			in.Op = OpCMPLW
			if in.RD != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoTW:
			in.Op, in.TO = OpTW, in.RD
		case xoSUBF:
			in.Op = OpSUBF
		case xoNEG:
			in.Op = OpNEG
			if in.RB != 0 {
				return in, ErrIllegal
			}
		case xoADD:
			in.Op = OpADD
		case xoMULLW:
			in.Op = OpMULLW
		case xoDIVW:
			in.Op = OpDIVW
		case xoAND:
			in.Op = OpAND
		case xoOR:
			in.Op = OpOR
		case xoXOR:
			in.Op = OpXOR
		case xoNOR:
			in.Op = OpNOR
		case xoSLW:
			in.Op = OpSLW
		case xoSRW:
			in.Op = OpSRW
		case xoSRAW:
			in.Op = OpSRAW
		case xoSRAWI:
			in.Op, in.SH = OpSRAWI, in.RB
		case xoEXTSB:
			in.Op = OpEXTSB
			if in.RB != 0 {
				return in, ErrIllegal
			}
		case xoEXTSH:
			in.Op = OpEXTSH
			if in.RB != 0 {
				return in, ErrIllegal
			}
		case xoLWZX:
			in.Op = OpLWZX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoLBZX:
			in.Op = OpLBZX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoLHZX:
			in.Op = OpLHZX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoLHAX:
			in.Op = OpLHAX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoSTWX:
			in.Op = OpSTWX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoSTBX:
			in.Op = OpSTBX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoSTHX:
			in.Op = OpSTHX
			if in.Rc {
				return in, ErrIllegal
			}
		case xoMFSPR:
			in.Op = OpMFSPR
			in.SPR = sprField(raw)
			if in.Rc {
				return in, ErrIllegal
			}
		case xoMTSPR:
			in.Op = OpMTSPR
			in.SPR = sprField(raw)
			if in.Rc {
				return in, ErrIllegal
			}
		case xoMFMSR:
			in.Op = OpMFMSR
			if in.RA != 0 || in.RB != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoMTMSR:
			in.Op = OpMTMSR
			if in.RA != 0 || in.RB != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoMFCR:
			in.Op = OpMFCR
			if in.RA != 0 || in.RB != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoMTCRF:
			in.Op = OpMTCRF
			if in.RA != 0 || in.RB != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoSYNC:
			in.Op = OpSYNC
			if in.RD != 0 || in.RA != 0 || in.RB != 0 || in.Rc {
				return in, ErrIllegal
			}
		case xoCTXSW:
			in.Op = OpCTXSW
		case xoHALT:
			in.Op = OpHALT
		default:
			return in, ErrIllegal
		}
	case 32:
		in.Op = OpLWZ
	case 34:
		in.Op = OpLBZ
	case 36:
		in.Op = OpSTW
	case 37:
		in.Op = OpSTWU
		if in.RA == 0 {
			return in, ErrIllegal
		}
	case 38:
		in.Op = OpSTB
	case 40:
		in.Op = OpLHZ
	case 42:
		in.Op = OpLHA
	case 44:
		in.Op = OpSTH
	default:
		return in, ErrIllegal
	}
	return in, nil
}

// sprField extracts the split 10-bit SPR number.
func sprField(raw uint32) uint16 {
	return uint16(raw>>16&0x1F | raw>>11&0x1F<<5)
}

// Cost returns the instruction's cycle cost.
func (in Inst) Cost() uint8 { return costOf(in.Op) }

// String disassembles the instruction.
func (in Inst) String() string {
	n := in.Op.Name()
	switch in.Op {
	case OpADDI, OpADDIS, OpMULLI:
		if in.Op == OpADDI && in.RA == 0 {
			return fmt.Sprintf("li r%d,%d", in.RD, in.SIMM)
		}
		return fmt.Sprintf("%s r%d,r%d,%d", n, in.RD, in.RA, in.SIMM)
	case OpCMPWI:
		return fmt.Sprintf("cmpwi r%d,%d", in.RA, in.SIMM)
	case OpCMPLWI:
		return fmt.Sprintf("cmplwi r%d,%d", in.RA, in.UIMM)
	case OpORI, OpORIS, OpXORI, OpANDIRc:
		if in.Op == OpORI && in.RD == 0 && in.RA == 0 && in.UIMM == 0 {
			return "nop"
		}
		return fmt.Sprintf("%s r%d,r%d,%d", n, in.RA, in.RD, in.UIMM)
	case OpLWZ, OpLBZ, OpLHZ, OpLHA, OpSTW, OpSTWU, OpSTB, OpSTH:
		return fmt.Sprintf("%s r%d,%d(r%d)", n, in.RD, in.SIMM, in.RA)
	case OpTWI:
		return fmt.Sprintf("twi %d,r%d,%d", in.TO, in.RA, in.SIMM)
	case OpTW:
		return fmt.Sprintf("tw %d,r%d,r%d", in.TO, in.RA, in.RB)
	case OpB:
		mn := "b"
		if in.LK {
			mn = "bl"
		}
		return fmt.Sprintf("%s .%+d", mn, in.SIMM)
	case OpBC:
		return fmt.Sprintf("bc %d,%d,.%+d", in.BO, in.BI, in.SIMM)
	case OpBCLR:
		if in.BO == 20 {
			return "blr"
		}
		return fmt.Sprintf("bclr %d,%d", in.BO, in.BI)
	case OpBCCTR:
		if in.BO == 20 && in.LK {
			return "bctrl"
		}
		return fmt.Sprintf("bcctr %d,%d", in.BO, in.BI)
	case OpSC, OpRFI, OpISYNC, OpSYNC, OpHALT:
		return n
	case OpRLWINM:
		return fmt.Sprintf("rlwinm r%d,r%d,%d,%d,%d", in.RA, in.RD, in.SH, in.MB, in.ME)
	case OpCMPW, OpCMPLW:
		return fmt.Sprintf("%s r%d,r%d", n, in.RA, in.RB)
	case OpSUBF, OpADD, OpMULLW, OpDIVW:
		return fmt.Sprintf("%s r%d,r%d,r%d", n, in.RD, in.RA, in.RB)
	case OpAND, OpOR, OpXOR, OpNOR, OpSLW, OpSRW, OpSRAW:
		if in.Op == OpOR && in.RD == in.RB {
			return fmt.Sprintf("mr r%d,r%d", in.RA, in.RD)
		}
		return fmt.Sprintf("%s r%d,r%d,r%d", n, in.RA, in.RD, in.RB)
	case OpSRAWI:
		return fmt.Sprintf("srawi r%d,r%d,%d", in.RA, in.RD, in.SH)
	case OpNEG:
		return fmt.Sprintf("neg r%d,r%d", in.RD, in.RA)
	case OpEXTSB, OpEXTSH:
		return fmt.Sprintf("%s r%d,r%d", n, in.RA, in.RD)
	case OpLWZX, OpLBZX, OpLHZX, OpLHAX, OpSTWX, OpSTBX, OpSTHX:
		return fmt.Sprintf("%s r%d,r%d,r%d", n, in.RD, in.RA, in.RB)
	case OpMFSPR:
		if in.SPR == SprLR {
			return fmt.Sprintf("mflr r%d", in.RD)
		}
		if in.SPR == SprCTR {
			return fmt.Sprintf("mfctr r%d", in.RD)
		}
		return fmt.Sprintf("mfspr r%d,%d", in.RD, in.SPR)
	case OpMTSPR:
		if in.SPR == SprLR {
			return fmt.Sprintf("mtlr r%d", in.RD)
		}
		if in.SPR == SprCTR {
			return fmt.Sprintf("mtctr r%d", in.RD)
		}
		return fmt.Sprintf("mtspr %d,r%d", in.SPR, in.RD)
	case OpMFMSR, OpMFCR:
		return fmt.Sprintf("%s r%d", n, in.RD)
	case OpMTCRF:
		return fmt.Sprintf("mtcrf 0xff,r%d", in.RD)
	case OpMTMSR:
		return fmt.Sprintf("mtmsr r%d", in.RD)
	case OpCTXSW:
		return fmt.Sprintf("ctxsw r%d,r%d", in.RA, in.RB)
	default:
		return fmt.Sprintf(".long 0x%08x", in.Raw)
	}
}

// DisasmRange disassembles words of code for diagnostics.
func DisasmRange(words []uint32, base uint32) []string {
	out := make([]string, 0, len(words))
	for i, w := range words {
		in, err := Decode(w)
		s := in.String()
		if err != nil {
			s = fmt.Sprintf(".long 0x%08x (illegal)", w)
		}
		out = append(out, fmt.Sprintf("%08x: %08x  %s", base+uint32(i)*4, w, s))
	}
	return out
}
