package risc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"kfi/internal/isa"
	"kfi/internal/mem"
)

// Differential fuzzer: the RISC twin of the CISC translator fuzzer. Random
// programs run under the block translator and the reference interpreter in
// lockstep over the same cycle-horizon ladder, and every rung must agree on
// the full architectural state (GPRs, PC, CR, LR/CTR/XER, MSR, the SPR
// file), the cycle count, and any raised event — including the crash cause
// when the program faults, and including runs where a bit flip lands
// mid-execution in already translated pages.

const (
	fuzzMemSize  = 1 << 17
	fuzzCode     = 0x2000
	fuzzCodeSize = 2 * mem.PageSize
	fuzzData     = 0x8000
)

// genStructured emits a random but mostly well-formed program: register ops
// the micro-run fuser fuses, loads/stores into a mapped data page,
// compare+branch pairs over random labels, LR/CTR round-trips through
// mfspr/mtspr, self-modifying stores into the code page, and occasional
// wild accesses, divides, traps, and syscalls that must raise identical
// events on both engines.
func genStructured(rng *rand.Rand) []byte {
	a := NewAsm()
	n := 40 + rng.Intn(160)
	gpr := func() uint8 { // keep the base registers alive most of the time
		r := uint8(2 + rng.Intn(18))
		return r
	}
	src := func() uint8 { return uint8(rng.Intn(NumRegs)) }
	label := func() string { return fmt.Sprintf("L%d", rng.Intn(n+1)) }

	a.Li32(20, fuzzData)
	a.Li32(21, fuzzCode)
	xOps := []func(ra, rs, rb uint8){a.And, a.Or, a.Xor, a.Nor, a.Slw, a.Srw, a.Sraw}
	dOps := []func(d, ra uint8, imm int32){a.Addi, a.Addis, a.Mulli}
	uOps := []func(ra, rs uint8, imm uint16){a.Ori, a.Oris, a.Xori, a.AndiRc}
	sprs := []uint16{SprLR, SprCTR, SprXER}
	wilds := []int32{0x0, 0x40, 0x1F000, 0x7FFFFF0}
	for i := 0; i < n; i++ {
		a.Label(fmt.Sprintf("L%d", i))
		switch k := rng.Intn(40); {
		case k < 6:
			xOps[rng.Intn(len(xOps))](gpr(), src(), src())
		case k < 9:
			switch rng.Intn(3) {
			case 0:
				a.Add(gpr(), src(), src())
			case 1:
				a.Subf(gpr(), src(), src())
			default:
				a.Mullw(gpr(), src(), src())
			}
		case k < 13:
			dOps[rng.Intn(len(dOps))](gpr(), src(), int32(int16(rng.Int31())))
		case k < 16:
			uOps[rng.Intn(len(uOps))](gpr(), src(), uint16(rng.Int31()))
		case k < 17:
			a.Rlwinm(gpr(), src(), uint8(rng.Intn(32)), uint8(rng.Intn(32)), uint8(rng.Intn(32)))
		case k < 18:
			a.Srawi(gpr(), src(), uint8(rng.Intn(32)))
		case k < 19:
			if rng.Intn(2) == 0 {
				a.Extsb(gpr(), src())
			} else {
				a.Extsh(gpr(), src())
			}
		case k < 20:
			a.Neg(gpr(), src())
		case k < 21:
			if rng.Intn(2) == 0 {
				a.Mfcr(gpr())
			} else {
				a.Mtcrf(src())
			}
		case k < 23:
			if rng.Intn(2) == 0 {
				a.Mfspr(gpr(), sprs[rng.Intn(len(sprs))])
			} else {
				a.Mtspr(sprs[rng.Intn(len(sprs))], src())
			}
		case k < 26:
			switch rng.Intn(4) {
			case 0:
				a.Lwz(gpr(), 20, int32(rng.Intn(1000)*4))
			case 1:
				a.Lbz(gpr(), 20, int32(rng.Intn(4000)))
			case 2:
				a.Lhz(gpr(), 20, int32(rng.Intn(2000)*2))
			default:
				a.Lha(gpr(), 20, int32(rng.Intn(2000)*2))
			}
		case k < 29:
			switch rng.Intn(3) {
			case 0:
				a.Stw(src(), 20, int32(rng.Intn(1000)*4))
			case 1:
				a.Stb(src(), 20, int32(rng.Intn(4000)))
			default:
				a.Sth(src(), 20, int32(rng.Intn(2000)*2))
			}
		case k < 30:
			// Self-modifying store into the executing code region: the
			// translator must invalidate and re-decode exactly like the
			// interpreter's refetch.
			a.Stw(src(), 21, int32(rng.Intn(fuzzCodeSize/4))*4)
		case k < 31:
			r := gpr()
			a.Li32(r, wilds[rng.Intn(len(wilds))])
			a.Lwz(gpr(), r, int32(rng.Intn(2))) // sometimes unaligned too
		case k < 34:
			a.Cmpwi(src(), int32(int16(rng.Int31())))
			br := []func(sym string){a.Beq, a.Bne, a.Blt, a.Bgt, a.Bge, a.Ble}
			br[rng.Intn(len(br))](label())
		case k < 35:
			a.Cmpw(src(), src())
			a.Bne(label())
		case k < 36:
			a.Divw(gpr(), src(), src())
		case k < 37:
			a.B(label())
		case k < 38:
			a.Bl(label())
		case k < 39:
			a.Blr() // LR may hold garbage: wild or unaligned fetch
		default:
			a.Nop()
		}
	}
	a.Label(fmt.Sprintf("L%d", n))
	a.Halt()
	code, err := a.Link(fuzzCode, nil)
	if err != nil {
		panic(err)
	}
	return code
}

// genWords emits random 32-bit words: illegal encodings, privileged ops,
// and wild control flow — the fallback and negative-cache paths.
func genWords(rng *rand.Rand) []byte {
	b := make([]byte, 4*(16+rng.Intn(128)))
	rng.Read(b)
	return b
}

// runDiff executes prog under the reference interpreter and the block
// translator on separate but identical machines, advancing both through the
// same random cycle-horizon ladder and comparing after every rung. When
// flip is set, one random bit of the code region flips mid-run on both.
func runDiff(t *testing.T, rng *rand.Rand, prog []byte, flip, wantTranslated bool) {
	t.Helper()
	build := func() (*CPU, *mem.Memory) {
		m := mem.New(fuzzMemSize, binary.BigEndian)
		m.Map(fuzzCode, fuzzCodeSize, mem.Present|mem.Writable)
		m.Map(fuzzData, mem.PageSize, mem.Present|mem.Writable)
		copy(m.RawBytes(fuzzCode, uint32(len(prog))), prog)
		c := NewCPU(m)
		c.PC = fuzzCode
		c.R[20] = fuzzData
		c.R[21] = fuzzCode
		return c, m
	}
	ref, refMem := build()
	tx, txMem := build()
	tr := newTranslator(tx)

	state := func(c *CPU) string {
		return fmt.Sprint(c.R, c.PC, c.CR, c.LR, c.CTR, c.XER, c.MSR, c.Clk.Cycles())
	}
	flipAt := -1
	if flip {
		flipAt = rng.Intn(30)
	}
	var limit uint64
	for rung := 0; rung < 60; rung++ {
		limit += uint64(1 + rng.Intn(400))
		evR := ref.RunUntil(limit)
		evT := tr.RunUntil(limit)
		if evR != evT {
			t.Fatalf("rung %d: events diverge:\n  interp:    %+v\n  translate: %+v", rung, evR, evT)
		}
		if sr, st := state(ref), state(tx); sr != st {
			t.Fatalf("rung %d: state diverges:\n  interp:    %s\n  translate: %s", rung, sr, st)
		}
		if ref.SPR != tx.SPR {
			t.Fatalf("rung %d: SPR files diverge", rung)
		}
		if evR.Kind != isa.EvNone {
			break
		}
		if rung == flipAt {
			addr := fuzzCode + uint32(rng.Intn(len(prog)))
			bit := uint(rng.Intn(8))
			refMem.FlipBit(addr, bit)
			txMem.FlipBit(addr, bit)
		}
	}
	if !bytes.Equal(refMem.PeekBytes(0, refMem.Size()), txMem.PeekBytes(0, txMem.Size())) {
		t.Fatal("memory images diverge")
	}
	if wantTranslated && tr.stats.Translated == 0 {
		t.Fatal("translator never translated a block — the fuzzer is only testing fallback paths")
	}
}

func TestTranslatorDifferentialFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("structured/%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x515C + seed))
			runDiff(t, rng, genStructured(rng), seed%2 == 0, true)
		})
	}
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("raw/%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xF00D + seed))
			runDiff(t, rng, genWords(rng), seed%2 == 1, false)
		})
	}
}
