package risc

import "fmt"

// SysReg describes one injectable system register of the G4-class supervisor
// programming model, mirroring the paper's target set ("memory management
// registers, configuration registers, performance monitor registers,
// exception-handling registers, and cache/memory subsystem registers").
type SysReg struct {
	Name string
	Bits uint
	Get  func(c *CPU) uint32
	Set  func(c *CPU, v uint32)
}

// supervisor SPR numbers exposed to the injection campaign, grouped as on the
// MPC7455. Together with MSR this yields the paper's "99 system registers".
var supervisorSPRs = buildSupervisorSPRs()

func buildSupervisorSPRs() []uint16 {
	var sprs []uint16
	add := func(ns ...uint16) { sprs = append(sprs, ns...) }
	addRange := func(lo, hi uint16) {
		for n := lo; n <= hi; n++ {
			add(n)
		}
	}
	// Exception handling and memory management.
	add(SprDSISR, SprDAR, SprDEC, SprSDR1, SprSRR0, SprSRR1)
	// Operating-system scratch registers.
	addRange(SprSPRG0, SprSPRG3)
	// External access, time base, processor version.
	add(SprEAR, SprTBL, SprTBU, SprPVR)
	// Block address translation (IBAT0-7, DBAT0-7 upper/lower).
	addRange(528, 543)
	addRange(560, 575)
	// Performance monitor (UMMCR/UPMC shadows and supervisor set).
	addRange(936, 943)
	addRange(944, 959)
	// Software TLB assist (DMISS, DCMP, HASH1, HASH2, IMISS, ICMP, RPA, +1).
	addRange(976, 983)
	// Configuration and cache control (HID0/1, IABR, DABR, MSSCR0, L2CR,
	// ICTC, THRM1-3, PIR, ...).
	addRange(1004, 1023)
	return sprs
}

// sprNames labels the architecturally interesting SPRs; others print as SPRn.
var sprNames = map[uint16]string{
	SprDSISR: "DSISR", SprDAR: "DAR", SprDEC: "DEC", SprSDR1: "SDR1",
	SprSRR0: "SRR0", SprSRR1: "SRR1",
	SprSPRG0: "SPRG0", SprSPRG1: "SPRG1", SprSPRG2: "SPRG2", SprSPRG3: "SPRG3",
	SprEAR: "EAR", SprTBL: "TBL", SprTBU: "TBU", SprPVR: "PVR",
	SprHID0: "HID0", SprHID1: "HID1", SprIABR: "IABR", SprDABR: "DABR",
}

func init() {
	// BAT register names, as numbered on the MPC7455: IBAT0-3 at 528-535,
	// DBAT0-3 at 536-543, and the extended IBAT4-7/DBAT4-7 at 560-575.
	for i := uint16(0); i < 4; i++ {
		sprNames[528+2*i] = fmt.Sprintf("IBAT%dU", i)
		sprNames[529+2*i] = fmt.Sprintf("IBAT%dL", i)
		sprNames[536+2*i] = fmt.Sprintf("DBAT%dU", i)
		sprNames[537+2*i] = fmt.Sprintf("DBAT%dL", i)
		sprNames[560+2*i] = fmt.Sprintf("IBAT%dU", i+4)
		sprNames[561+2*i] = fmt.Sprintf("IBAT%dL", i+4)
		sprNames[568+2*i] = fmt.Sprintf("DBAT%dU", i+4)
		sprNames[569+2*i] = fmt.Sprintf("DBAT%dL", i+4)
	}
}

// SprName returns the SPR's conventional name.
func SprName(n uint16) string {
	if s, ok := sprNames[n]; ok {
		return s
	}
	return fmt.Sprintf("SPR%d", n)
}

// SystemRegisters returns the G4-class supervisor register file for the
// injection campaign: MSR plus the supervisor SPRs (99 registers in total,
// matching the paper's count). Only a handful are architecturally live;
// errors in the rest never manifest, as the paper observed ("only 15 G4
// registers contribute to the crashes").
func SystemRegisters() []SysReg {
	regs := make([]SysReg, 0, len(supervisorSPRs)+1)
	regs = append(regs, SysReg{
		Name: "MSR", Bits: 32,
		Get: func(c *CPU) uint32 { return c.MSR },
		Set: func(c *CPU, v uint32) { c.MSR = v },
	})
	for _, n := range supervisorSPRs {
		n := n
		regs = append(regs, SysReg{
			Name: SprName(n), Bits: 32,
			Get: func(c *CPU) uint32 { return c.SPR[n] },
			Set: func(c *CPU, v uint32) { c.SPR[n] = v },
		})
	}
	return regs
}
