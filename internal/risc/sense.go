package risc

// ExecView reduces a decoded instruction to the fields its executor
// actually reads, so two encodings with equal views (the cost is per-Op,
// hence automatically equal) execute identically. Unlike the CISC decoder,
// Decode fills every bitfield slot regardless of the operation — RD carries
// BO for bc, compare opcodes ignore their Rc slot, and the X-form ALU ops
// accept but never evaluate the Rc bit (cpu.go computes no CR0 for them) —
// so whole-struct comparison would be wrong in both directions. The
// projection below must mirror cpu.go's Step; keep them in sync.
//
// ok is false for operations outside the table (OpIllegal or a future op
// this projection does not model yet): callers must then treat the two
// instructions as distinguishable.
func ExecView(in Inst) (Inst, bool) {
	v := Inst{Op: in.Op}
	switch in.Op {
	case OpADDI, OpADDIS, OpMULLI,
		OpLWZ, OpLBZ, OpLHZ, OpLHA, OpSTW, OpSTWU, OpSTB, OpSTH:
		v.RD, v.RA, v.SIMM = in.RD, in.RA, in.SIMM
	case OpCMPWI:
		v.RA, v.SIMM = in.RA, in.SIMM
	case OpCMPLWI:
		v.RA, v.UIMM = in.RA, in.UIMM
	case OpORI, OpORIS, OpXORI, OpANDIRc:
		v.RD, v.RA, v.UIMM = in.RD, in.RA, in.UIMM
	case OpRLWINM:
		// rlwinm is the one rotate that honours Rc.
		v.RD, v.RA, v.SH, v.MB, v.ME, v.Rc = in.RD, in.RA, in.SH, in.MB, in.ME, in.Rc
	case OpTWI:
		v.TO, v.RA, v.SIMM = in.TO, in.RA, in.SIMM
	case OpB:
		v.SIMM, v.AA, v.LK = in.SIMM, in.AA, in.LK
	case OpBC:
		v.BO, v.BI, v.SIMM, v.AA, v.LK = in.BO, in.BI, in.SIMM, in.AA, in.LK
	case OpBCLR, OpBCCTR:
		v.BO, v.BI, v.LK = in.BO, in.BI, in.LK
	case OpSC, OpRFI, OpISYNC, OpSYNC, OpHALT:
		// No operand fields (sc reads r0 implicitly; decode pins the rest).
	case OpCMPW, OpCMPLW:
		v.RA, v.RB = in.RA, in.RB
	case OpTW:
		v.TO, v.RA, v.RB = in.TO, in.RA, in.RB
	case OpADD, OpSUBF, OpMULLW, OpDIVW,
		OpAND, OpOR, OpXOR, OpNOR, OpSLW, OpSRW, OpSRAW,
		OpLWZX, OpLBZX, OpLHZX, OpLHAX, OpSTWX, OpSTBX, OpSTHX:
		// X-form ALU ignores Rc in the executor; loads/stores reject it in
		// decode. Either way it is not part of the view.
		v.RD, v.RA, v.RB = in.RD, in.RA, in.RB
	case OpNEG, OpEXTSB, OpEXTSH:
		v.RD, v.RA = in.RD, in.RA
	case OpSRAWI:
		v.RD, v.RA, v.SH = in.RD, in.RA, in.SH
	case OpMFSPR, OpMTSPR:
		v.RD, v.SPR = in.RD, in.SPR
	case OpMFMSR, OpMTMSR, OpMFCR, OpMTCRF:
		v.RD = in.RD
	case OpCTXSW:
		v.RA, v.RB = in.RA, in.RB
	default:
		return in, false
	}
	return v, true
}
