package risc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
)

// Decoded-instruction cache (predecode cache).
//
// RISC instructions are fixed-width words, so the cache keeps one decoded
// slot per word of a page, filled lazily as words are first executed. A hit
// copies the decoded Inst (and its precomputed cycle cost) and skips the
// fetch+decode of the reference interpreter.
//
// Invalidation is generation-based: every Step revalidates the page against
// internal/mem's per-page write-generation counter, so stores, injected bit
// flips, baseline restores, reboots, and protection changes are observed
// exactly as by the uncached interpreter. Unaligned PCs (reachable only
// through corruption) bypass the cache entirely, since an unaligned fetch can
// straddle a page boundary.

// Slot states.
const (
	slotEmpty uint8 = iota
	slotValid
	// slotInvalid records an illegal-instruction decode outcome.
	slotInvalid
)

type islot struct {
	state uint8
	cost  uint8
	inst  Inst
}

type icachePage struct {
	// gen is the mem generation the slots were decoded against.
	gen uint64
	// okKernel/okUser record whether instruction fetch succeeds everywhere
	// in this page for each mode; false routes to the reference sequence so
	// faults (bad area vs machine check) are classified there.
	okKernel, okUser bool
	slots            [mem.PageSize / 4]islot
}

// icacheMaxPages bounds the cache footprint (corrupted control flow can
// execute from arbitrary pages). Exceeding it drops the whole cache.
const icacheMaxPages = 128

// SetPredecode enables or disables the decoded-instruction cache. Disabling
// yields the reference interpreter and drops the cache.
func (c *CPU) SetPredecode(on bool) {
	c.NoPredecode = !on
	c.FlushPredecode()
}

// FlushPredecode drops every predecoded instruction; subsequent Steps refill
// lazily from RAM. Generation checks already invalidate stale slots, so this
// is a memory/benchmark control, not a correctness requirement.
func (c *CPU) FlushPredecode() {
	c.icache = nil
	c.icLast = nil
}

// icachePageFor returns (creating if needed) the cache page for a page index.
func (c *CPU) icachePageFor(page uint32) *icachePage {
	pg := c.icache[page]
	if pg == nil {
		if c.icache == nil || len(c.icache) >= icacheMaxPages {
			c.icache = make(map[uint32]*icachePage, icacheMaxPages)
		}
		pg = new(icachePage)
		pg.gen = ^uint64(0) // impossible generation: force a reset on first use
		c.icache[page] = pg
	}
	return pg
}

// icacheReset drops a page's slots and revalidates its fetchability for the
// generation gen.
func (c *CPU) icacheReset(pg *icachePage, page uint32, gen uint64) {
	*pg = icachePage{
		gen:      gen,
		okKernel: c.Mem.PageFetchable(page, false),
		okUser:   c.Mem.PageFetchable(page, true),
	}
}

// fetchDecode produces the instruction at PC and its cycle cost. ok=false
// means the returned event is the fetch/decode outcome exactly as the
// reference sequence reports it.
func (c *CPU) fetchDecode(in *Inst, cost *uint8) (isa.Event, bool) {
	if c.NoPredecode || c.PC&3 != 0 {
		return c.fetchDecodeSlow(in, cost)
	}
	page := c.PC / mem.PageSize
	pg := c.icLast
	if pg == nil || c.icLastPage != page {
		if c.PC >= c.Mem.Size() {
			return c.fetchDecodeSlow(in, cost)
		}
		pg = c.icachePageFor(page)
		c.icLast, c.icLastPage = pg, page
	}
	// Revalidate on every step: a store retired one instruction ago may have
	// rewritten the word this fetch is about to observe.
	if g := c.Mem.PageGen(page); pg.gen != g {
		c.icacheReset(pg, page, g)
	}
	user := c.user()
	if user && !pg.okUser || !user && !pg.okKernel {
		return c.fetchDecodeSlow(in, cost)
	}
	sl := &pg.slots[(c.PC&(mem.PageSize-1))>>2]
	switch sl.state {
	case slotValid:
		*in, *cost = sl.inst, sl.cost
		return isa.Event{}, true
	case slotInvalid:
		return c.exception(isa.CauseIllegalInstr, c.PC), false
	}
	// Miss: run the reference sequence once and cache the outcome (an
	// aligned word never leaves the page).
	ev, ok := c.fetchDecodeSlow(in, cost)
	switch {
	case ok:
		sl.inst, sl.cost, sl.state = *in, *cost, slotValid
	case ev.Cause == isa.CauseIllegalInstr:
		sl.state = slotInvalid
	}
	return ev, ok
}

// fetchDecodeSlow is the reference fetch+decode sequence (the pre-cache Step
// body).
func (c *CPU) fetchDecodeSlow(in *Inst, cost *uint8) (isa.Event, bool) {
	rawBytes, f := c.Mem.Fetch(c.PC, 4, c.user())
	if f != nil {
		if f.Kind == mem.FaultBus {
			return c.exception(isa.CauseMachineCheck, f.Addr), false
		}
		return c.exception(isa.CauseBadArea, f.Addr), false
	}
	raw := uint32(rawBytes[0])<<24 | uint32(rawBytes[1])<<16 | uint32(rawBytes[2])<<8 | uint32(rawBytes[3])
	dec, err := Decode(raw)
	if err != nil {
		return c.exception(isa.CauseIllegalInstr, c.PC), false
	}
	*in, *cost = dec, costOf(dec.Op)
	return isa.Event{}, true
}
