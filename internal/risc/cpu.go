package risc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
)

// CPU is the G4-class processor core. Construct with NewCPU.
//
// The privilege mode is carried by MSR[PR], as on PowerPC. The special
// purpose registers live in a flat 1024-entry file indexed by SPR number;
// only a handful have architectural behavior (SRR0/1, SPRG0-3, HID0, DEC,
// DAR/DSISR), the rest hold state for the system-register injection campaign
// exactly like the real chip's mostly-inert supervisor registers.
type CPU struct {
	R  [NumRegs]uint32
	PC uint32

	LR, CTR, XER, CR uint32
	MSR              uint32
	SPR              [1024]uint32

	// StackLo/StackHi delimit the current kernel process stack. They are
	// maintained by the machine layer on context switches and consulted by
	// the kernel's exception-entry wrapper to detect stack overflow (a G4
	// kernel feature the P4 kernel lacks).
	StackLo, StackHi uint32

	Mem   *mem.Memory
	Debug isa.DebugUnit
	Clk   isa.CycleCounter

	// Trace, when non-nil, is called once per retired instruction.
	Trace func(pc uint32, cost uint8)

	// bticValid is false until system software initializes the branch
	// target instruction cache. If a fault flips HID0[BTIC] on while the
	// BTIC content is invalid, taken branches can fetch garbage and raise
	// illegal-instruction exceptions (paper §5.2, SPR1008).
	bticValid   bool
	bticCounter uint32

	// NoPredecode disables the decoded-instruction cache (see icache.go),
	// forcing the reference fetch+decode sequence on every Step.
	NoPredecode bool

	// Decoded-instruction cache state; icLast short-circuits the page lookup
	// while execution stays within one page.
	icache     map[uint32]*icachePage
	icLast     *icachePage
	icLastPage uint32

	// pending data-breakpoint trap.
	dbSlot   int
	dbAccess isa.DataAccess
	dbAddr   uint32
}

// NewCPU creates a CPU bound to the given memory, in supervisor mode with
// translation enabled and external interrupts disabled.
func NewCPU(m *mem.Memory) *CPU {
	c := &CPU{Mem: m}
	c.Reset()
	return c
}

// Reset restores architectural boot state. Memory is not touched.
func (c *CPU) Reset() {
	c.R = [NumRegs]uint32{}
	c.PC = 0
	c.LR, c.CTR, c.XER, c.CR = 0, 0, 0, 0
	c.MSR = MSRME | MSRIR | MSRDR
	c.SPR = [1024]uint32{}
	c.SPR[SprPVR] = 0x80010201 // MPC7455-flavored processor version
	c.SPR[SprHID0] = HID0ICE | HID0DCE
	c.StackLo, c.StackHi = 0, 0
	c.bticValid = false
	c.bticCounter = 0
	c.Debug.ClearAll()
	c.dbSlot = -1
}

func (c *CPU) user() bool { return c.MSR&MSRPR != 0 }

// Mode returns the current privilege mode (derived from MSR[PR]).
func (c *CPU) Mode() isa.Mode {
	if c.user() {
		return isa.UserMode
	}
	return isa.KernelMode
}

func (c *CPU) exception(cause isa.CrashCause, addr uint32) isa.Event {
	if cause == isa.CauseBadArea {
		c.SPR[SprDAR] = addr
		c.SPR[SprDSISR] = 0x40000000
	}
	return isa.Event{Kind: isa.EvException, Cause: cause, FaultAddr: addr}
}

func (c *CPU) dataFault(f *mem.Fault) isa.Event {
	switch f.Kind {
	case mem.FaultBus:
		return c.exception(isa.CauseMachineCheck, f.Addr)
	case mem.FaultProtection:
		return c.exception(isa.CauseBusError, f.Addr)
	default: // null, unmapped → DSI
		return c.exception(isa.CauseBadArea, f.Addr)
	}
}

// load performs a checked, aligned data read. Translation faults take
// precedence over alignment, as on the real processor (the paper's Figure 9
// reports "kernel access of bad area" for a misaligned access at 0x4d).
func (c *CPU) load(addr, size uint32) (uint32, *isa.Event) {
	if c.MSR&MSRDR == 0 {
		ev := c.exception(isa.CauseMachineCheck, addr)
		return 0, &ev
	}
	if f := c.Mem.Check(addr, size, false, c.user()); f != nil {
		ev := c.dataFault(f)
		return 0, &ev
	}
	if addr&(size-1) != 0 {
		ev := c.exception(isa.CauseAlignment, addr)
		return 0, &ev
	}
	v, f := c.Mem.Read(addr, size, c.user())
	if f != nil {
		ev := c.dataFault(f)
		return 0, &ev
	}
	if c.dbSlot < 0 && c.Debug.Armed(isa.BreakData) {
		if s := c.Debug.HitData(addr, size); s >= 0 {
			c.dbSlot, c.dbAccess, c.dbAddr = s, isa.AccessRead, addr
		}
	}
	return v, nil
}

// store performs a checked, aligned data write with the same fault ordering
// as load.
func (c *CPU) store(addr, size, val uint32) *isa.Event {
	if c.MSR&MSRDR == 0 {
		ev := c.exception(isa.CauseMachineCheck, addr)
		return &ev
	}
	if f := c.Mem.Check(addr, size, true, c.user()); f != nil {
		ev := c.dataFault(f)
		return &ev
	}
	if addr&(size-1) != 0 {
		ev := c.exception(isa.CauseAlignment, addr)
		return &ev
	}
	if f := c.Mem.Write(addr, size, val, c.user()); f != nil {
		ev := c.dataFault(f)
		return &ev
	}
	if c.dbSlot < 0 && c.Debug.Armed(isa.BreakData) {
		if s := c.Debug.HitData(addr, size); s >= 0 {
			c.dbSlot, c.dbAccess, c.dbAddr = s, isa.AccessWrite, addr
		}
	}
	return nil
}

// setCR0 records a signed comparison result in CR0.
func (c *CPU) setCR0(v int32) {
	c.CR &^= CR0LT | CR0GT | CR0EQ | CR0SO
	switch {
	case v < 0:
		c.CR |= CR0LT
	case v > 0:
		c.CR |= CR0GT
	default:
		c.CR |= CR0EQ
	}
}

// setCR0u records an unsigned comparison.
func (c *CPU) setCR0u(a, b uint32) {
	c.CR &^= CR0LT | CR0GT | CR0EQ | CR0SO
	switch {
	case a < b:
		c.CR |= CR0LT
	case a > b:
		c.CR |= CR0GT
	default:
		c.CR |= CR0EQ
	}
}

// crBit returns CR bit i (PowerPC numbering: bit 0 is the MSB).
func (c *CPU) crBit(i uint8) bool { return c.CR>>(31-(i&31))&1 != 0 }

// branchTaken evaluates the full PowerPC BO/BI semantics (including CTR
// decrement forms).
func (c *CPU) branchTaken(bo, bi uint8) bool {
	ctrOK := true
	if bo&4 == 0 {
		c.CTR--
		ctrOK = (c.CTR != 0) != (bo&2 != 0)
	}
	condOK := bo&16 != 0 || c.crBit(bi) == (bo&8 != 0)
	return ctrOK && condOK
}

// trapTaken evaluates the TO field of tw/twi against a and b.
func trapTaken(to uint8, a, b uint32) bool {
	sa, sb := int32(a), int32(b)
	return to&16 != 0 && sa < sb ||
		to&8 != 0 && sa > sb ||
		to&4 != 0 && a == b ||
		to&2 != 0 && a < b ||
		to&1 != 0 && a > b
}

// privileged returns an illegal-instruction (privileged instruction program
// exception) event when executing in user mode.
func (c *CPU) privileged() *isa.Event {
	if !c.user() {
		return nil
	}
	ev := c.exception(isa.CauseIllegalInstr, c.PC)
	return &ev
}

// branchTo redirects execution, masking the two low-order bits as the
// hardware does for LR/CTR-based branches.
func (c *CPU) branchTo(target uint32) *isa.Event {
	c.PC = target &^ 3
	// A corrupted HID0 can enable the branch target instruction cache while
	// its content is invalid; some taken branches then feed garbage into the
	// pipeline and raise an illegal-instruction exception (paper §5.2).
	if !c.bticValid && c.SPR[SprHID0]&HID0BTIC != 0 {
		c.bticCounter++
		if c.bticCounter%16 == 0 {
			ev := c.exception(isa.CauseIllegalInstr, c.PC)
			return &ev
		}
	}
	return nil
}

// Step executes one instruction (or reports a pending breakpoint/event).
func (c *CPU) Step() isa.Event {
	if c.Debug.Armed(isa.BreakInstruction) {
		if s := c.Debug.HitInstruction(c.PC); s >= 0 {
			return isa.Event{Kind: isa.EvInstrBreak, Slot: s, BreakAddr: c.PC}
		}
	}
	c.dbSlot = -1

	if c.MSR&MSRIR == 0 {
		// Instruction translation disabled mid-flight: machine check.
		return c.exception(isa.CauseMachineCheck, c.PC)
	}
	// Fetch+decode, via the predecode cache when enabled (see icache.go).
	var (
		in  Inst
		cst uint8
	)
	if fev, ok := c.fetchDecode(&in, &cst); !ok {
		return fev
	}

	pc := c.PC
	ev := c.exec(&in)
	if ev.Kind == isa.EvException {
		return ev
	}
	c.Clk.Advance(uint64(cst))
	if c.Trace != nil {
		c.Trace(pc, cst)
	}
	if ev.Kind != isa.EvNone {
		return ev
	}
	if c.dbSlot >= 0 {
		return isa.Event{Kind: isa.EvDataBreak, Slot: c.dbSlot, Access: c.dbAccess, BreakAddr: c.dbAddr}
	}
	return isa.Event{}
}

// RunUntil steps until the clock reaches limit or an instruction produces a
// non-EvNone event, which it returns (EvNone means the limit was reached).
// Keeping this loop inside the package lets the run harness amortize its
// per-instruction bookkeeping over whole quiet stretches.
func (c *CPU) RunUntil(limit uint64) isa.Event {
	for c.Clk.Cycles() < limit {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return ev
		}
	}
	return isa.Event{}
}

// regOr0 implements the rA|0 addressing convention.
func (c *CPU) regOr0(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return c.R[r]
}

func (c *CPU) exec(in *Inst) isa.Event {
	next := c.PC + 4

	switch in.Op {
	case OpADDI:
		c.R[in.RD] = c.regOr0(in.RA) + uint32(in.SIMM)
	case OpADDIS:
		c.R[in.RD] = c.regOr0(in.RA) + uint32(in.SIMM)<<16
	case OpMULLI:
		c.R[in.RD] = uint32(int32(c.R[in.RA]) * in.SIMM)
	case OpCMPWI:
		a := int32(c.R[in.RA])
		switch {
		case a < in.SIMM:
			c.setCR0(-1)
		case a > in.SIMM:
			c.setCR0(1)
		default:
			c.setCR0(0)
		}
	case OpCMPLWI:
		c.setCR0u(c.R[in.RA], in.UIMM)
	case OpORI:
		c.R[in.RA] = c.R[in.RD] | in.UIMM
	case OpORIS:
		c.R[in.RA] = c.R[in.RD] | in.UIMM<<16
	case OpXORI:
		c.R[in.RA] = c.R[in.RD] ^ in.UIMM
	case OpANDIRc:
		c.R[in.RA] = c.R[in.RD] & in.UIMM
		c.setCR0(int32(c.R[in.RA]))
	case OpRLWINM:
		v := c.R[in.RD]
		rot := v
		if sh := uint32(in.SH & 31); sh != 0 {
			rot = v<<sh | v>>(32-sh)
		}
		c.R[in.RA] = rot & maskMBME(in.MB, in.ME)
		if in.Rc {
			c.setCR0(int32(c.R[in.RA]))
		}

	// Loads/stores (D-form).
	case OpLWZ, OpLBZ, OpLHZ, OpLHA:
		addr := c.regOr0(in.RA) + uint32(in.SIMM)
		size := uint32(4)
		switch in.Op {
		case OpLBZ:
			size = 1
		case OpLHZ, OpLHA:
			size = 2
		}
		v, ev := c.load(addr, size)
		if ev != nil {
			return *ev
		}
		if in.Op == OpLHA {
			v = uint32(int32(int16(v)))
		}
		c.R[in.RD] = v
	case OpSTW, OpSTB, OpSTH:
		addr := c.regOr0(in.RA) + uint32(in.SIMM)
		size := uint32(4)
		switch in.Op {
		case OpSTB:
			size = 1
		case OpSTH:
			size = 2
		}
		if ev := c.store(addr, size, c.R[in.RD]); ev != nil {
			return *ev
		}
	case OpSTWU:
		addr := c.R[in.RA] + uint32(in.SIMM)
		if ev := c.store(addr, 4, c.R[in.RD]); ev != nil {
			return *ev
		}
		c.R[in.RA] = addr

	// Indexed loads/stores.
	case OpLWZX, OpLBZX, OpLHZX, OpLHAX:
		addr := c.regOr0(in.RA) + c.R[in.RB]
		size := uint32(4)
		switch in.Op {
		case OpLBZX:
			size = 1
		case OpLHZX, OpLHAX:
			size = 2
		}
		v, ev := c.load(addr, size)
		if ev != nil {
			return *ev
		}
		if in.Op == OpLHAX {
			v = uint32(int32(int16(v)))
		}
		c.R[in.RD] = v
	case OpSTWX, OpSTBX, OpSTHX:
		addr := c.regOr0(in.RA) + c.R[in.RB]
		size := uint32(4)
		switch in.Op {
		case OpSTBX:
			size = 1
		case OpSTHX:
			size = 2
		}
		if ev := c.store(addr, size, c.R[in.RD]); ev != nil {
			return *ev
		}

	// X-form ALU.
	case OpADD:
		c.R[in.RD] = c.R[in.RA] + c.R[in.RB]
	case OpSUBF:
		c.R[in.RD] = c.R[in.RB] - c.R[in.RA]
	case OpNEG:
		c.R[in.RD] = -c.R[in.RA]
	case OpMULLW:
		c.R[in.RD] = uint32(int32(c.R[in.RA]) * int32(c.R[in.RB]))
	case OpDIVW:
		a, b := int32(c.R[in.RA]), int32(c.R[in.RB])
		if b == 0 || (a == -1<<31 && b == -1) {
			// PowerPC divw does not trap: the result is undefined (we use 0)
			// and no exception is raised — unlike the P4's #DE.
			c.R[in.RD] = 0
		} else {
			c.R[in.RD] = uint32(a / b)
		}
	case OpAND:
		c.R[in.RA] = c.R[in.RD] & c.R[in.RB]
	case OpOR:
		c.R[in.RA] = c.R[in.RD] | c.R[in.RB]
	case OpXOR:
		c.R[in.RA] = c.R[in.RD] ^ c.R[in.RB]
	case OpNOR:
		c.R[in.RA] = ^(c.R[in.RD] | c.R[in.RB])
	case OpSLW:
		sh := c.R[in.RB] & 63
		if sh > 31 {
			c.R[in.RA] = 0
		} else {
			c.R[in.RA] = c.R[in.RD] << sh
		}
	case OpSRW:
		sh := c.R[in.RB] & 63
		if sh > 31 {
			c.R[in.RA] = 0
		} else {
			c.R[in.RA] = c.R[in.RD] >> sh
		}
	case OpSRAW:
		sh := c.R[in.RB] & 63
		if sh > 31 {
			sh = 31
		}
		c.R[in.RA] = uint32(int32(c.R[in.RD]) >> sh)
	case OpSRAWI:
		c.R[in.RA] = uint32(int32(c.R[in.RD]) >> (in.SH & 31))
	case OpEXTSB:
		c.R[in.RA] = uint32(int32(int8(c.R[in.RD])))
	case OpEXTSH:
		c.R[in.RA] = uint32(int32(int16(c.R[in.RD])))
	case OpCMPW:
		a, b := int32(c.R[in.RA]), int32(c.R[in.RB])
		switch {
		case a < b:
			c.setCR0(-1)
		case a > b:
			c.setCR0(1)
		default:
			c.setCR0(0)
		}
	case OpCMPLW:
		c.setCR0u(c.R[in.RA], c.R[in.RB])

	// Branches.
	case OpB:
		target := next - 4 + uint32(in.SIMM)
		if in.AA {
			target = uint32(in.SIMM)
		}
		if in.LK {
			c.LR = next
		}
		if ev := c.branchTo(target); ev != nil {
			return *ev
		}
		return isa.Event{}
	case OpBC:
		taken := c.branchTaken(in.BO, in.BI)
		if in.LK {
			c.LR = next
		}
		if taken {
			target := next - 4 + uint32(in.SIMM)
			if in.AA {
				target = uint32(in.SIMM)
			}
			if ev := c.branchTo(target); ev != nil {
				return *ev
			}
			return isa.Event{}
		}
	case OpBCLR:
		taken := c.branchTaken(in.BO, in.BI)
		target := c.LR
		if in.LK {
			c.LR = next
		}
		if taken {
			if ev := c.branchTo(target); ev != nil {
				return *ev
			}
			return isa.Event{}
		}
	case OpBCCTR:
		taken := c.branchTaken(in.BO|4, in.BI) // CTR forms are invalid for bcctr
		if in.LK {
			c.LR = next
		}
		if taken {
			if ev := c.branchTo(c.CTR); ev != nil {
				return *ev
			}
			return isa.Event{}
		}

	// Traps and system calls.
	case OpTWI:
		if trapTaken(in.TO, c.R[in.RA], uint32(in.SIMM)) {
			return c.exception(isa.CauseBadTrap, c.PC)
		}
	case OpTW:
		if trapTaken(in.TO, c.R[in.RA], c.R[in.RB]) {
			return c.exception(isa.CauseBadTrap, c.PC)
		}
	case OpSC:
		c.PC = next
		return isa.Event{Kind: isa.EvSyscall, SysNo: c.R[0]}
	case OpRFI:
		if ev := c.privileged(); ev != nil {
			return *ev
		}
		// Our rfi restores the four-word exception frame from the stack
		// (the lwz/mtsrr0/mtsrr1/rfi return sequence fused into one step;
		// see DeliverInterrupt).
		pcv, ev := c.load(c.R[SP], 4)
		if ev != nil {
			return *ev
		}
		_, ev = c.load(c.R[SP]+4, 4) // mode word (informational)
		if ev != nil {
			return *ev
		}
		oldSP, ev := c.load(c.R[SP]+8, 4)
		if ev != nil {
			return *ev
		}
		msr, ev := c.load(c.R[SP]+12, 4)
		if ev != nil {
			return *ev
		}
		c.MSR = msr
		c.R[SP] = oldSP
		if ev := c.branchTo(pcv); ev != nil {
			return *ev
		}
		return isa.Event{}
	case OpISYNC, OpSYNC:
		// Memory/pipeline barriers are no-ops in the simulator.

	// SPR / MSR access.
	case OpMFSPR:
		switch in.SPR {
		case SprXER:
			c.R[in.RD] = c.XER
		case SprLR:
			c.R[in.RD] = c.LR
		case SprCTR:
			c.R[in.RD] = c.CTR
		default:
			if ev := c.privileged(); ev != nil {
				return *ev
			}
			c.R[in.RD] = c.SPR[in.SPR]
		}
	case OpMTSPR:
		switch in.SPR {
		case SprXER:
			c.XER = c.R[in.RD]
		case SprLR:
			c.LR = c.R[in.RD]
		case SprCTR:
			c.CTR = c.R[in.RD]
		default:
			if ev := c.privileged(); ev != nil {
				return *ev
			}
			c.SPR[in.SPR] = c.R[in.RD]
		}
	case OpMFMSR:
		if ev := c.privileged(); ev != nil {
			return *ev
		}
		c.R[in.RD] = c.MSR
	case OpMTMSR:
		if ev := c.privileged(); ev != nil {
			return *ev
		}
		c.MSR = c.R[in.RD]
	case OpMFCR:
		c.R[in.RD] = c.CR
	case OpMTCRF:
		c.CR = c.R[in.RD]

	// Simulator extensions.
	case OpCTXSW:
		if ev := c.privileged(); ev != nil {
			return *ev
		}
		c.PC = next
		return isa.Event{Kind: isa.EvCtxSw, Prev: c.R[in.RA], Next: c.R[in.RB]}
	case OpHALT:
		if ev := c.privileged(); ev != nil {
			return *ev
		}
		c.PC = next
		return isa.Event{Kind: isa.EvHalt}

	default:
		return c.exception(isa.CauseIllegalInstr, c.PC)
	}

	c.PC = next
	return isa.Event{}
}

// maskMBME builds the rlwinm mask covering PowerPC bits MB through ME
// inclusive (bit 0 is the MSB); MB > ME produces the wrapped mask.
func maskMBME(mb, me uint8) uint32 {
	bit := func(i uint8) uint32 { return 1 << (31 - uint32(i&31)) }
	var m uint32
	i := mb & 31
	for {
		m |= bit(i)
		if i == me&31 {
			return m
		}
		i = (i + 1) & 31
	}
}

// InterruptsEnabled reports MSR[EE].
func (c *CPU) InterruptsEnabled() bool { return c.MSR&MSREE != 0 }

// DeliverInterrupt vectors the CPU to handler: SRR0/SRR1 capture the
// interrupted context, the CPU enters supervisor mode with external
// interrupts disabled, the four-word exception frame [PC, oldMode, oldSP,
// oldMSR] is pushed onto the kernel stack, and execution continues at
// handler. Faults in this path (e.g. a corrupted stack pointer) are returned
// for the machine layer to classify — on the G4 the kernel's entry wrapper
// turns an out-of-range stack pointer into an explicit Stack Overflow.
func (c *CPU) DeliverInterrupt(handler, kernelSP uint32) isa.Event {
	c.SPR[SprSRR0] = c.PC
	c.SPR[SprSRR1] = c.MSR
	oldMSR := c.MSR
	oldMode := c.Mode()
	oldSP := c.R[SP]
	c.MSR &^= MSRPR | MSREE
	if oldMode == isa.UserMode {
		c.R[SP] = kernelSP
	}
	sp := c.R[SP] - 16
	if ev := c.store(sp+12, 4, oldMSR); ev != nil {
		return *ev
	}
	if ev := c.store(sp+8, 4, oldSP); ev != nil {
		return *ev
	}
	if ev := c.store(sp+4, 4, uint32(oldMode)); ev != nil {
		return *ev
	}
	if ev := c.store(sp, 4, c.PC); ev != nil {
		return *ev
	}
	c.R[SP] = sp
	c.PC = handler
	return isa.Event{}
}

// PendingDataBreak reports a data-breakpoint hit recorded outside the normal
// Step flow (e.g. during interrupt-frame pushes in DeliverInterrupt) so the
// machine layer can deliver the activation event. The pending state is
// cleared.
func (c *CPU) PendingDataBreak() (slot int, access isa.DataAccess, addr uint32, ok bool) {
	if c.dbSlot < 0 {
		return 0, 0, 0, false
	}
	slot, access, addr = c.dbSlot, c.dbAccess, c.dbAddr
	c.dbSlot = -1
	return slot, access, addr, true
}
