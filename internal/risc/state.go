package risc

import "kfi/internal/isa"

// State is the complete architectural and micro-architectural state of the
// G4-class CPU, as captured by the checkpoint/restore subsystem: general
// registers, the full 1024-entry SPR file, stack bounds, BTIC validity, the
// debug-register file, cycle counter, and the pending data-breakpoint trap.
// Memory is captured separately (internal/mem baselines).
type State struct {
	R  [NumRegs]uint32
	PC uint32

	LR, CTR, XER, CR uint32
	MSR              uint32
	SPR              [1024]uint32

	StackLo, StackHi uint32

	BTICValid   bool
	BTICCounter uint32

	Debug [isa.DebugSlots]isa.Breakpoint
	Clock isa.ClockState

	// Pending data-breakpoint trap (slot -1 when none).
	PendingSlot   int
	PendingAccess isa.DataAccess
	PendingAddr   uint32
}

// SaveState captures the CPU for a checkpoint.
func (c *CPU) SaveState() State {
	return State{
		R: c.R, PC: c.PC,
		LR: c.LR, CTR: c.CTR, XER: c.XER, CR: c.CR, MSR: c.MSR,
		SPR:     c.SPR,
		StackLo: c.StackLo, StackHi: c.StackHi,
		BTICValid: c.bticValid, BTICCounter: c.bticCounter,
		Debug: c.Debug.Slots(), Clock: c.Clk.State(),
		PendingSlot: c.dbSlot, PendingAccess: c.dbAccess, PendingAddr: c.dbAddr,
	}
}

// RestoreState reapplies a captured state. The CPU's memory binding and trace
// hook are untouched: they belong to the hosting machine, not the checkpoint.
func (c *CPU) RestoreState(s *State) {
	c.R, c.PC = s.R, s.PC
	c.LR, c.CTR, c.XER, c.CR, c.MSR = s.LR, s.CTR, s.XER, s.CR, s.MSR
	c.SPR = s.SPR
	c.StackLo, c.StackHi = s.StackLo, s.StackHi
	c.bticValid, c.bticCounter = s.BTICValid, s.BTICCounter
	c.Debug.SetSlots(s.Debug)
	c.Clk.SetState(s.Clock)
	c.dbSlot, c.dbAccess, c.dbAddr = s.PendingSlot, s.PendingAccess, s.PendingAddr
}
