package risc

import (
	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// Basic-block threaded-closure translator (platform.EngineTranslate).
//
// Straight-line guest code is decoded once into an array of fused Go
// closures — a translated basic block — keyed by page and entry word and
// invalidated by internal/mem's per-page write-generation counters, the same
// counters that invalidate the predecode cache. The fixed-width stream makes
// translation simpler than on the CISC core (no length re-synchronization),
// so the RISC translator leans harder on specialization: most ops compile to
// closures that capture their operand indices and immediates and skip the
// exec switch entirely, and maximal runs of fault-free register ops fuse
// into single closures that retire the PC and clock once for the whole run
// (legal because nothing inside such a run can fault or raise an event, so
// no intermediate PC or cycle count is architecturally observable).
//
// The soundness argument is the CISC translator's (see
// internal/cisc/translate.go and DESIGN.md §18), with two extra dispatch
// preconditions owned by this ISA: instruction translation must be on
// (MSR[IR], otherwise Step machine-checks) and the PC must be word-aligned
// (unaligned fetches can straddle pages and always take the reference
// sequence). MSR is constant within a block — mtmsr, rfi, and sc all
// terminate blocks — so both are checked once per dispatch.

// blockUnit is one translated step: a fused closure covering one or more
// guest instructions. run returns nil when every covered instruction retired
// normally — keeping the hot path to a single pointer-width return — and the
// terminating event otherwise. stores marks units that may write memory,
// telling the dispatcher to revalidate the executing page's write generation
// afterwards.
type blockUnit struct {
	run    func(c *CPU) *isa.Event
	stores bool
}

// tblock is one translated basic block. An empty unit list is a negative
// cache entry: the entry word is undecodable, so dispatch falls back to the
// interpreter without re-walking.
type tblock struct {
	units  []blockUnit
	total  uint64 // whole-block cycle cost
	ninstr int
}

// untranslatable is the shared negative-cache sentinel.
var untranslatable = &tblock{}

// tpage caches translated blocks for one guest page, keyed by entry word
// index (every instruction is one aligned 32-bit word).
type tpage struct {
	// gen is the mem generation the blocks were decoded against.
	gen uint64
	// okKernel/okUser record whether instruction fetch succeeds everywhere
	// in this page for each mode (flags are uniform across a page and cannot
	// change without a generation bump).
	okKernel, okUser bool
	nblocks          int
	blocks           [mem.PageSize / 4]*tblock
}

const (
	// translateMaxPages bounds the translator footprint; exceeding it drops
	// the whole cache (corrupted control flow can execute anywhere).
	translateMaxPages = 64
	// translateMaxInstrs caps a block's instruction count.
	translateMaxInstrs = 64
)

// translator is the EngineTranslate implementation for the G4 core.
type translator struct {
	cpu      *CPU
	pages    map[uint32]*tpage
	last     *tpage
	lastPage uint32
	stats    platform.EngineStats
}

func newTranslator(cpu *CPU) *translator {
	// Fallback stepping goes through the predecode cache: outcomes are
	// identical either way and untranslatable stretches stay fast.
	cpu.SetPredecode(true)
	return &translator{cpu: cpu}
}

func (t *translator) Kind() platform.EngineKind { return platform.EngineTranslate }

func (t *translator) Flush() {
	t.pages, t.last = nil, nil
	t.cpu.FlushPredecode()
}

func (t *translator) Stats() platform.EngineStats { return t.stats }
func (t *translator) ResetStats()                 { t.stats = platform.EngineStats{} }

// RunUntil dispatches translated blocks until the clock reaches limit or an
// instruction produces an event.
func (t *translator) RunUntil(limit uint64) isa.Event {
	c := t.cpu
	// Anything the block dispatcher cannot reproduce step-for-step —
	// tracing, armed debug hardware — delegates the whole call to the
	// interpreter. The armed state only changes between RunUntil calls
	// (hooks and the injector run with the machine paused), so checking
	// once up front is exact.
	if c.Trace != nil || c.Debug.Armed(isa.BreakInstruction) || c.Debug.Armed(isa.BreakData) {
		t.stats.Fallbacks++
		return c.RunUntil(limit)
	}
	// Step clears the pending data-break slot before each instruction; with
	// data breakpoints unarmed no unit can set it, so clearing once here
	// matches the interpreter's per-step reset.
	c.dbSlot = -1
	for c.Clk.Cycles() < limit {
		page, blk := t.lookup()
		if blk == nil || len(blk.units) == 0 {
			t.stats.Fallbacks++
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return ev
			}
			continue
		}
		if c.Clk.Cycles()+blk.total > limit {
			// The block would overrun the cycle horizon: take one
			// interpreter step and re-dispatch (not a translation failure,
			// so not counted as a fallback).
			if ev := c.Step(); ev.Kind != isa.EvNone {
				return ev
			}
			continue
		}
		t.stats.Hits++
		pg := t.last
		for i := range blk.units {
			u := &blk.units[i]
			if ev := u.run(c); ev != nil {
				return *ev
			}
			if u.stores && c.Mem.PageGen(page) != pg.gen {
				// The guest stored into the executing code page (or an
				// injected flip landed there): abandon the rest of the
				// block and re-dispatch at the current PC, which is
				// exactly the interpreter's refetch.
				break
			}
		}
	}
	return isa.Event{}
}

// lookup validates the page under PC and returns its block (translating on
// first use), nil when the translator must not run here.
func (t *translator) lookup() (uint32, *tblock) {
	c := t.cpu
	if c.MSR&MSRIR == 0 || c.PC&3 != 0 || c.PC >= c.Mem.Size() {
		return 0, nil
	}
	page := c.PC / mem.PageSize
	pg := t.last
	if pg == nil || t.lastPage != page {
		pg = t.pageFor(page)
		t.last, t.lastPage = pg, page
	}
	if g := c.Mem.PageGen(page); pg.gen != g {
		t.resetPage(pg, page, g)
	}
	if u := c.user(); u && !pg.okUser || !u && !pg.okKernel {
		return page, nil
	}
	off := (c.PC & (mem.PageSize - 1)) >> 2
	blk := pg.blocks[off]
	if blk == nil {
		blk = t.translate(c.PC, page)
		pg.blocks[off] = blk
		pg.nblocks++
		if len(blk.units) > 0 {
			t.stats.Translated++
		}
	}
	return page, blk
}

func (t *translator) pageFor(page uint32) *tpage {
	pg := t.pages[page]
	if pg == nil {
		if t.pages == nil || len(t.pages) >= translateMaxPages {
			t.pages = make(map[uint32]*tpage, translateMaxPages)
		}
		pg = &tpage{gen: ^uint64(0)} // impossible generation: reset on first use
		t.pages[page] = pg
	}
	return pg
}

// resetPage drops a page's blocks and revalidates its fetchability for
// generation gen.
func (t *translator) resetPage(pg *tpage, page uint32, gen uint64) {
	if pg.nblocks > 0 {
		t.stats.Invalidations++
	}
	*pg = tpage{
		gen:      gen,
		okKernel: t.cpu.Mem.PageFetchable(page, false),
		okUser:   t.cpu.Mem.PageFetchable(page, true),
	}
}

// riscTerminator reports ops that end a basic block: control transfers,
// event-raising ops, and mtmsr/rfi, which can change the translation and
// privilege state the dispatch preconditions were checked under.
func riscTerminator(op Op) bool {
	switch op {
	case OpB, OpBC, OpBCLR, OpBCCTR, OpSC, OpRFI, OpMTMSR, OpCTXSW, OpHALT:
		return true
	default:
		return false
	}
}

// opStores reports ops that may write guest memory.
func opStores(op Op) bool {
	switch op {
	case OpSTW, OpSTWU, OpSTB, OpSTH, OpSTWX, OpSTBX, OpSTHX:
		return true
	default:
		return false
	}
}

// faultEv boxes an event into the unit return protocol. Events end the
// dispatch (and almost always the run), so the allocation is off the hot
// path.
func faultEv(ev isa.Event) *isa.Event { return &ev }

// translate decodes the straight-line run starting at addr (word-aligned,
// inside page) into a block of fused closures. Decoding stops at a block
// terminator, an undecodable word, the page boundary, or the instruction
// cap; an immediately-undecodable entry yields the negative sentinel so
// dispatch falls back without re-walking.
func (t *translator) translate(addr, page uint32) *tblock {
	c := t.cpu
	var (
		ins []Inst
		pcs []uint32
	)
	for len(ins) < translateMaxInstrs {
		raw := c.Mem.PeekBytes(addr, 4)
		if raw == nil {
			break
		}
		w := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
		dec, err := Decode(w)
		if err != nil {
			break // illegal word: the interpreter raises the fault
		}
		ins = append(ins, dec)
		pcs = append(pcs, addr)
		addr += 4
		if riscTerminator(dec.Op) || addr/mem.PageSize != page {
			break
		}
	}
	if len(ins) == 0 {
		return untranslatable
	}

	blk := &tblock{ninstr: len(ins)}
	for i := range ins {
		blk.total += uint64(ins[i].Cost())
	}
	for i := 0; i < len(ins); {
		in := &ins[i]
		// Superinstruction: CR0 compare + conditional branch.
		if isCmpCR0(in) && i+1 < len(ins) && ins[i+1].Op == OpBC {
			blk.units = append(blk.units, fuseCmpBc(*in, ins[i+1], pcs[i]))
			i += 2
			continue
		}
		// Superinstruction: a maximal run of fault-free register ops fuses
		// into one closure with a single PC/clock retire.
		if j := microRunEnd(ins, i); j-i >= 2 {
			blk.units = append(blk.units, fuseMicroRun(ins[i:j], pcs[j-1]+4))
			i = j
			continue
		}
		u := unitFor(*in, pcs[i])
		// Superinstruction: load followed by a fault-free register op.
		if !u.stores && isFusableLoad(in.Op) && i+1 < len(ins) && isFusableALU(ins[i+1].Op) {
			blk.units = append(blk.units, chainUnits(u, unitFor(ins[i+1], pcs[i+1])))
			i += 2
			continue
		}
		blk.units = append(blk.units, u)
		i++
	}
	return blk
}

func isCmpCR0(in *Inst) bool {
	switch in.Op {
	case OpCMPWI, OpCMPLWI, OpCMPW, OpCMPLW:
		return true
	default:
		return false
	}
}

func isFusableLoad(op Op) bool {
	switch op {
	case OpLWZ, OpLBZ, OpLHZ, OpLHA, OpLWZX, OpLBZX, OpLHZX, OpLHAX:
		return true
	default:
		return false
	}
}

// isFusableALU reports fault-free register ops safe to chain behind a load.
func isFusableALU(op Op) bool {
	switch op {
	case OpADDI, OpADDIS, OpMULLI, OpORI, OpORIS, OpXORI, OpANDIRc, OpRLWINM,
		OpCMPWI, OpCMPLWI, OpCMPW, OpCMPLW,
		OpADD, OpSUBF, OpNEG, OpMULLW, OpAND, OpOR, OpXOR, OpNOR,
		OpSLW, OpSRW, OpSRAW, OpSRAWI, OpEXTSB, OpEXTSH, OpMFCR, OpMTCRF:
		return true
	default:
		return false
	}
}

// chainUnits runs two units as one closure. The first must not store (there
// is no generation recheck between them).
func chainUnits(a, b blockUnit) blockUnit {
	ar, br := a.run, b.run
	return blockUnit{
		stores: a.stores || b.stores,
		run: func(c *CPU) *isa.Event {
			if ev := ar(c); ev != nil {
				return ev
			}
			return br(c)
		},
	}
}

// --- Fault-free register-run fusion ---------------------------------------

// microRunEnd returns the end of the maximal riscMicro-eligible run starting
// at i. A trailing CR0 compare directly before a bc is left out so the
// compare+branch superinstruction still fires.
func microRunEnd(ins []Inst, i int) int {
	j := i
	for j < len(ins) && riscMicro(ins[j]) != nil {
		j++
	}
	if j > i && j < len(ins) && ins[j].Op == OpBC && isCmpCR0(&ins[j-1]) {
		j--
	}
	return j
}

// fuseMicroRun compiles ins (all riscMicro-eligible) into one closure: the
// bodies run back to back, then the PC and the clock retire once. Nothing in
// the run can fault or raise an event, so the skipped intermediate PC and
// cycle values are unobservable.
func fuseMicroRun(ins []Inst, end uint32) blockUnit {
	var cost uint64
	ops := make([]func(*CPU), len(ins))
	for k := range ins {
		ops[k] = riscMicro(ins[k])
		cost += uint64(ins[k].Cost())
	}
	switch len(ops) {
	case 2:
		f0, f1 := ops[0], ops[1]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			c.PC = end
			c.Clk.Advance(cost)
			return nil
		}}
	case 3:
		f0, f1, f2 := ops[0], ops[1], ops[2]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			f2(c)
			c.PC = end
			c.Clk.Advance(cost)
			return nil
		}}
	case 4:
		f0, f1, f2, f3 := ops[0], ops[1], ops[2], ops[3]
		return blockUnit{run: func(c *CPU) *isa.Event {
			f0(c)
			f1(c)
			f2(c)
			f3(c)
			c.PC = end
			c.Clk.Advance(cost)
			return nil
		}}
	}
	return blockUnit{run: func(c *CPU) *isa.Event {
		for _, f := range ops {
			f(c)
		}
		c.PC = end
		c.Clk.Advance(cost)
		return nil
	}}
}

// riscMicro builds the body closure for one run member — the architectural
// effect minus PC/clock, which the enclosing run retires once — or nil when
// the op is not a fault-free register op. It doubles as the run-membership
// predicate: every non-nil body is safe to fuse.
func riscMicro(in Inst) func(*CPU) {
	switch in.Op {
	case OpADDI:
		d, a, imm := in.RD, in.RA, uint32(in.SIMM)
		if a == 0 {
			return func(c *CPU) { c.R[d] = imm }
		}
		return func(c *CPU) { c.R[d] = c.R[a] + imm }
	case OpADDIS:
		d, a, imm := in.RD, in.RA, uint32(in.SIMM)<<16
		if a == 0 {
			return func(c *CPU) { c.R[d] = imm }
		}
		return func(c *CPU) { c.R[d] = c.R[a] + imm }
	case OpMULLI:
		d, a, imm := in.RD, in.RA, in.SIMM
		return func(c *CPU) { c.R[d] = uint32(int32(c.R[a]) * imm) }
	case OpORI:
		a, s, imm := in.RA, in.RD, in.UIMM
		return func(c *CPU) { c.R[a] = c.R[s] | imm }
	case OpORIS:
		a, s, imm := in.RA, in.RD, in.UIMM<<16
		return func(c *CPU) { c.R[a] = c.R[s] | imm }
	case OpXORI:
		a, s, imm := in.RA, in.RD, in.UIMM
		return func(c *CPU) { c.R[a] = c.R[s] ^ imm }
	case OpANDIRc:
		a, s, imm := in.RA, in.RD, in.UIMM
		return func(c *CPU) {
			c.R[a] = c.R[s] & imm
			c.setCR0(int32(c.R[a]))
		}
	case OpRLWINM:
		a, s, sh, rc := in.RA, in.RD, uint32(in.SH&31), in.Rc
		mask := maskMBME(in.MB, in.ME)
		return func(c *CPU) {
			v := c.R[s]
			rot := v
			if sh != 0 {
				rot = v<<sh | v>>(32-sh)
			}
			c.R[a] = rot & mask
			if rc {
				c.setCR0(int32(c.R[a]))
			}
		}
	case OpCMPWI, OpCMPLWI, OpCMPW, OpCMPLW:
		in := in
		return func(c *CPU) { cmpCR0(c, &in) }
	case OpADD:
		d, a, b := in.RD, in.RA, in.RB
		return func(c *CPU) { c.R[d] = c.R[a] + c.R[b] }
	case OpSUBF:
		d, a, b := in.RD, in.RA, in.RB
		return func(c *CPU) { c.R[d] = c.R[b] - c.R[a] }
	case OpNEG:
		d, a := in.RD, in.RA
		return func(c *CPU) { c.R[d] = -c.R[a] }
	case OpMULLW:
		d, a, b := in.RD, in.RA, in.RB
		return func(c *CPU) { c.R[d] = uint32(int32(c.R[a]) * int32(c.R[b])) }
	case OpAND:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) { c.R[a] = c.R[s] & c.R[b] }
	case OpOR:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) { c.R[a] = c.R[s] | c.R[b] }
	case OpXOR:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) { c.R[a] = c.R[s] ^ c.R[b] }
	case OpNOR:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) { c.R[a] = ^(c.R[s] | c.R[b]) }
	case OpSLW:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) {
			sh := c.R[b] & 63
			if sh > 31 {
				c.R[a] = 0
			} else {
				c.R[a] = c.R[s] << sh
			}
		}
	case OpSRW:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) {
			sh := c.R[b] & 63
			if sh > 31 {
				c.R[a] = 0
			} else {
				c.R[a] = c.R[s] >> sh
			}
		}
	case OpSRAW:
		a, s, b := in.RA, in.RD, in.RB
		return func(c *CPU) {
			sh := c.R[b] & 63
			if sh > 31 {
				sh = 31
			}
			c.R[a] = uint32(int32(c.R[s]) >> sh)
		}
	case OpSRAWI:
		a, s, sh := in.RA, in.RD, in.SH&31
		return func(c *CPU) { c.R[a] = uint32(int32(c.R[s]) >> sh) }
	case OpEXTSB:
		a, s := in.RA, in.RD
		return func(c *CPU) { c.R[a] = uint32(int32(int8(c.R[s]))) }
	case OpEXTSH:
		a, s := in.RA, in.RD
		return func(c *CPU) { c.R[a] = uint32(int32(int16(c.R[s]))) }
	case OpMFCR:
		d := in.RD
		return func(c *CPU) { c.R[d] = c.CR }
	case OpMTCRF:
		s := in.RD
		return func(c *CPU) { c.CR = c.R[s] }
	case OpISYNC, OpSYNC:
		return func(c *CPU) {}
	case OpMFSPR:
		d := in.RD
		switch in.SPR {
		case SprXER:
			return func(c *CPU) { c.R[d] = c.XER }
		case SprLR:
			return func(c *CPU) { c.R[d] = c.LR }
		case SprCTR:
			return func(c *CPU) { c.R[d] = c.CTR }
		}
	case OpMTSPR:
		s := in.RD
		switch in.SPR {
		case SprXER:
			return func(c *CPU) { c.XER = c.R[s] }
		case SprLR:
			return func(c *CPU) { c.LR = c.R[s] }
		case SprCTR:
			return func(c *CPU) { c.CTR = c.R[s] }
		}
	}
	return nil
}

// cmpCR0 applies one of the four CR0 compare forms.
func cmpCR0(c *CPU, in *Inst) {
	switch in.Op {
	case OpCMPWI:
		a := int32(c.R[in.RA])
		switch {
		case a < in.SIMM:
			c.setCR0(-1)
		case a > in.SIMM:
			c.setCR0(1)
		default:
			c.setCR0(0)
		}
	case OpCMPLWI:
		c.setCR0u(c.R[in.RA], in.UIMM)
	case OpCMPW:
		a, b := int32(c.R[in.RA]), int32(c.R[in.RB])
		switch {
		case a < b:
			c.setCR0(-1)
		case a > b:
			c.setCR0(1)
		default:
			c.setCR0(0)
		}
	case OpCMPLW:
		c.setCR0u(c.R[in.RA], c.R[in.RB])
	}
}

// fuseCmpBc builds the compare+branch superinstruction. The compare is
// fault-free and retires fully (its cycle is charged) before the branch
// runs with the interpreter's exact bc protocol, including the CTR
// decrement forms and the invalid-BTIC taken-branch exception.
func fuseCmpBc(cmp, bc Inst, cmpPC uint32) blockUnit {
	bcPC := cmpPC + 4
	next := bcPC + 4
	target := bcPC + uint32(bc.SIMM)
	if bc.AA {
		target = uint32(bc.SIMM)
	}
	cmpCost := uint64(cmp.Cost())
	bcCost := uint64(bc.Cost())
	bo, bi, lk := bc.BO, bc.BI, bc.LK
	return blockUnit{run: func(c *CPU) *isa.Event {
		cmpCR0(c, &cmp)
		c.PC = bcPC
		c.Clk.Advance(cmpCost)
		taken := c.branchTaken(bo, bi)
		if lk {
			c.LR = next
		}
		if taken {
			if ev := c.branchTo(target); ev != nil {
				return ev
			}
		} else {
			c.PC = next
		}
		c.Clk.Advance(bcCost)
		return nil
	}}
}

// unitFor builds the closure for one instruction. The fixed-width ISA makes
// specialization pay: almost every op compiles to a closure over its operand
// indices and immediates, skipping the exec switch and the Inst copy. The
// few privileged or rarely-executed ops run through exec with Step's exact
// advance protocol.
func unitFor(in Inst, pc uint32) blockUnit {
	next := pc + 4
	cost := uint64(in.Cost())
	// Fault-free register ops share their bodies with the run fuser.
	if body := riscMicro(in); body != nil {
		return blockUnit{run: func(c *CPU) *isa.Event {
			body(c)
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}
	}
	switch in.Op {
	// Loads (D-form and indexed).
	case OpLWZ, OpLBZ, OpLHZ, OpLHA:
		d, a, disp := in.RD, in.RA, uint32(in.SIMM)
		size := uint32(4)
		switch in.Op {
		case OpLBZ:
			size = 1
		case OpLHZ, OpLHA:
			size = 2
		}
		signExt := in.Op == OpLHA
		return blockUnit{run: func(c *CPU) *isa.Event {
			addr := disp
			if a != 0 {
				addr += c.R[a]
			}
			v, ev := c.load(addr, size)
			if ev != nil {
				return ev
			}
			if signExt {
				v = uint32(int32(int16(v)))
			}
			c.R[d] = v
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}
	case OpLWZX, OpLBZX, OpLHZX, OpLHAX:
		d, a, b := in.RD, in.RA, in.RB
		size := uint32(4)
		switch in.Op {
		case OpLBZX:
			size = 1
		case OpLHZX, OpLHAX:
			size = 2
		}
		signExt := in.Op == OpLHAX
		return blockUnit{run: func(c *CPU) *isa.Event {
			addr := c.R[b]
			if a != 0 {
				addr += c.R[a]
			}
			v, ev := c.load(addr, size)
			if ev != nil {
				return ev
			}
			if signExt {
				v = uint32(int32(int16(v)))
			}
			c.R[d] = v
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}

	// Stores (D-form, update form, and indexed).
	case OpSTW, OpSTB, OpSTH:
		s, a, disp := in.RD, in.RA, uint32(in.SIMM)
		size := uint32(4)
		switch in.Op {
		case OpSTB:
			size = 1
		case OpSTH:
			size = 2
		}
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			addr := disp
			if a != 0 {
				addr += c.R[a]
			}
			if ev := c.store(addr, size, c.R[s]); ev != nil {
				return ev
			}
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}
	case OpSTWU:
		s, a, disp := in.RD, in.RA, uint32(in.SIMM)
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			addr := c.R[a] + disp
			if ev := c.store(addr, 4, c.R[s]); ev != nil {
				return ev
			}
			c.R[a] = addr
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}
	case OpSTWX, OpSTBX, OpSTHX:
		s, a, b := in.RD, in.RA, in.RB
		size := uint32(4)
		switch in.Op {
		case OpSTBX:
			size = 1
		case OpSTHX:
			size = 2
		}
		return blockUnit{stores: true, run: func(c *CPU) *isa.Event {
			addr := c.R[b]
			if a != 0 {
				addr += c.R[a]
			}
			if ev := c.store(addr, size, c.R[s]); ev != nil {
				return ev
			}
			c.PC = next
			c.Clk.Advance(cost)
			return nil
		}}

	// Branches (block terminators) replicate exec's ordering exactly: the
	// LR update happens even for untaken conditional branches, branchTo runs
	// after the link update, and its BTIC exception returns with the PC
	// already redirected and the clock not yet advanced.
	case OpB:
		target := next - 4 + uint32(in.SIMM)
		if in.AA {
			target = uint32(in.SIMM)
		}
		lk := in.LK
		return blockUnit{run: func(c *CPU) *isa.Event {
			if lk {
				c.LR = next
			}
			if ev := c.branchTo(target); ev != nil {
				return ev
			}
			c.Clk.Advance(cost)
			return nil
		}}
	case OpBC:
		target := next - 4 + uint32(in.SIMM)
		if in.AA {
			target = uint32(in.SIMM)
		}
		bo, bi, lk := in.BO, in.BI, in.LK
		return blockUnit{run: func(c *CPU) *isa.Event {
			taken := c.branchTaken(bo, bi)
			if lk {
				c.LR = next
			}
			if taken {
				if ev := c.branchTo(target); ev != nil {
					return ev
				}
			} else {
				c.PC = next
			}
			c.Clk.Advance(cost)
			return nil
		}}
	case OpBCLR:
		bo, bi, lk := in.BO, in.BI, in.LK
		return blockUnit{run: func(c *CPU) *isa.Event {
			taken := c.branchTaken(bo, bi)
			target := c.LR
			if lk {
				c.LR = next
			}
			if taken {
				if ev := c.branchTo(target); ev != nil {
					return ev
				}
			} else {
				c.PC = next
			}
			c.Clk.Advance(cost)
			return nil
		}}
	case OpBCCTR:
		bo, bi, lk := in.BO|4, in.BI, in.LK // CTR forms are invalid for bcctr
		return blockUnit{run: func(c *CPU) *isa.Event {
			taken := c.branchTaken(bo, bi)
			if lk {
				c.LR = next
			}
			if taken {
				if ev := c.branchTo(c.CTR); ev != nil {
					return ev
				}
			} else {
				c.PC = next
			}
			c.Clk.Advance(cost)
			return nil
		}}
	}
	// Generic unit: Step's protocol minus fetch/decode and the (guaranteed
	// unarmed) debug checks — privileged SPR/MSR access, traps, sc, rfi,
	// the simulator extensions. exec never mutates the Inst.
	return blockUnit{stores: opStores(in.Op), run: func(c *CPU) *isa.Event {
		ev := c.exec(&in)
		if ev.Kind == isa.EvException {
			return faultEv(ev)
		}
		c.Clk.Advance(cost)
		if ev.Kind != isa.EvNone {
			return faultEv(ev)
		}
		return nil
	}}
}
