package risc

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"kfi/internal/isa"
	"kfi/internal/mem"
)

const (
	tCode  = 0x1000
	tData  = 0x4000
	tStack = 0x8000 // [0x8000, 0xA000): an 8 KiB kernel stack, G4-style
)

func newTestCPU(t *testing.T, build func(a *Asm)) *CPU {
	t.Helper()
	m := mem.New(1<<20, binary.BigEndian)
	m.Map(tCode, 0x1000, mem.Present)
	m.Map(tData, 0x2000, mem.Present|mem.Writable)
	m.Map(tStack, 0x2000, mem.Present|mem.Writable)
	a := NewAsm()
	build(a)
	code, err := a.Link(tCode, nil)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	copy(m.RawBytes(tCode, uint32(len(code))), code)
	m.SetBusWindow(0xF0000000, 0xF8000000)
	c := NewCPU(m)
	c.PC = tCode
	c.R[SP] = tStack + 0x2000
	c.StackLo, c.StackHi = tStack, tStack+0x2000
	return c
}

func run(t *testing.T, c *CPU, limit int) isa.Event {
	t.Helper()
	for i := 0; i < limit; i++ {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			return ev
		}
	}
	t.Fatal("no event within limit")
	return isa.Event{}
}

func TestRealPowerPCEncodings(t *testing.T) {
	// Golden encodings from the paper's listings and the PowerPC ISA.
	tests := []struct {
		name string
		emit func(a *Asm)
		want uint32
	}{
		{"mflr r0", func(a *Asm) { a.Mflr(0) }, 0x7C0802A6},
		{"lhax r0,r8,r0", func(a *Asm) { a.Lhax(0, 8, 0) }, 0x7C0802AE},
		{"stwu r1,-32(r1)", func(a *Asm) { a.Stwu(SP, SP, -32) }, 0x9421FFE0},
		{"lwz r11,40(r31)", func(a *Asm) { a.Lwz(11, 31, 40) }, 0x817F0028},
		{"cmpwi r11,0", func(a *Asm) { a.Cmpwi(11, 0) }, 0x2C0B0000},
		{"lwz r9,76(r11)", func(a *Asm) { a.Lwz(9, 11, 76) }, 0x812B004C},
		{"blr", func(a *Asm) { a.Blr() }, 0x4E800020},
		{"sc", func(a *Asm) { a.Sc() }, 0x44000002},
		{"nop", func(a *Asm) { a.Nop() }, 0x60000000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewAsm()
			tt.emit(a)
			code, err := a.Link(0, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := binary.BigEndian.Uint32(code)
			if got != tt.want {
				t.Errorf("encoded 0x%08X, want 0x%08X", got, tt.want)
			}
		})
	}
}

func TestFigure15MflrToLhaxIsOneBitFlip(t *testing.T) {
	// The paper's Figure 15: one flipped bit turns mflr r0 into
	// lhax r0,r8,r0.
	diff := uint32(0x7C0802A6) ^ uint32(0x7C0802AE)
	if diff&(diff-1) != 0 {
		t.Fatalf("mflr→lhax differs by 0x%x, not a single bit", diff)
	}
	in, err := Decode(0x7C0802AE)
	if err != nil {
		t.Fatalf("lhax did not decode: %v", err)
	}
	if in.Op != OpLHAX || in.RD != 0 || in.RA != 8 || in.RB != 0 {
		t.Errorf("decoded %+v, want lhax r0,r8,r0", in)
	}
}

func TestDecodeIllegalWords(t *testing.T) {
	for _, w := range []uint32{0, 0xFFFFFFFF, 1 << 26, 63 << 26} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(0x%08x) succeeded, want illegal", w)
		}
	}
}

// Property: Decode is total over all 32-bit words.
func TestDecodeTotalProperty(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		return in.Op != OpIllegal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: assembled instructions always decode, and the disassembly is
// non-empty.
func TestAsmAlwaysDecodesProperty(t *testing.T) {
	a := NewAsm()
	a.Li(3, 5)
	a.Li32(4, 0x12345678)
	a.Add(5, 3, 4)
	a.Subf(6, 3, 4)
	a.Mullw(7, 3, 4)
	a.Divw(8, 4, 3)
	a.And(9, 4, 3)
	a.Or(10, 4, 3)
	a.Xor(11, 4, 3)
	a.Nor(12, 4, 3)
	a.Slwi(13, 4, 3)
	a.Srwi(14, 4, 3)
	a.Srawi(15, 4, 2)
	a.Extsb(16, 4)
	a.Extsh(17, 4)
	a.Cmpw(3, 4)
	a.Cmplw(3, 4)
	a.Cmpwi(3, -1)
	a.Cmplwi(3, 2)
	a.AndiRc(18, 4, 0xFF)
	a.Ori(19, 4, 1)
	a.Oris(20, 4, 1)
	a.Xori(21, 4, 1)
	a.Mulli(22, 3, 7)
	a.Neg(23, 3)
	a.Mfcr(24)
	a.Halt()
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+4 <= len(code); i += 4 {
		w := binary.BigEndian.Uint32(code[i:])
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("word %d (0x%08x) illegal", i/4, w)
		}
		if in.String() == "" {
			t.Fatalf("word %d has empty disassembly", i/4)
		}
	}
}

func TestALUExecution(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 7)
		a.Li(4, 5)
		a.Subf(5, 4, 3)   // r5 = r3 - r4 = 2
		a.Mulli(5, 5, 10) // 20
		a.Li(6, 3)
		a.Divw(7, 5, 6) // 6
		a.Neg(8, 7)     // -6
		a.Li32(9, 0x12345678)
		a.Slwi(10, 9, 8)
		a.Srwi(11, 9, 16)
		a.Halt()
	})
	ev := run(t, c, 100)
	if ev.Kind != isa.EvHalt {
		t.Fatalf("event = %+v", ev)
	}
	if c.R[7] != 6 || int32(c.R[8]) != -6 {
		t.Errorf("r7=%d r8=%d", c.R[7], int32(c.R[8]))
	}
	if c.R[10] != 0x34567800 || c.R[11] != 0x1234 {
		t.Errorf("shifts: r10=0x%x r11=0x%x", c.R[10], c.R[11])
	}
}

func TestDivwDoesNotTrap(t *testing.T) {
	// Unlike the P4's #DE, PowerPC divide-by-zero produces an undefined
	// result without an exception — a real architectural difference.
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 42)
		a.Li(4, 0)
		a.Divw(5, 3, 4)
		a.Halt()
	})
	if ev := run(t, c, 10); ev.Kind != isa.EvHalt {
		t.Errorf("divide by zero raised %+v", ev)
	}
}

func TestConditionalBranches(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 5)
		a.Cmpwi(3, 10)
		a.Blt("less")
		a.Li(4, 0)
		a.Halt()
		a.Label("less")
		a.Li(4, 1)
		a.Halt()
	})
	run(t, c, 20)
	if c.R[4] != 1 {
		t.Errorf("blt not taken: r4=%d", c.R[4])
	}
}

func TestLoopWithBdnz(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 0)
		a.Li(4, 5)
		a.Mtctr(4)
		a.Label("loop")
		a.Addi(3, 3, 2)
		a.Bdnz("loop")
		a.Halt()
	})
	run(t, c, 50)
	if c.R[3] != 10 {
		t.Errorf("loop sum = %d, want 10", c.R[3])
	}
}

func TestCallReturnLinkRegister(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Bl("fn")
		a.Halt()
		a.Label("fn")
		a.Stwu(SP, SP, -32)
		a.Mflr(0)
		a.Stw(0, SP, 8)
		a.Li(3, 42)
		a.Lwz(0, SP, 8)
		a.Mtlr(0)
		a.Addi(SP, SP, 32)
		a.Blr()
	})
	ev := run(t, c, 100)
	if ev.Kind != isa.EvHalt {
		t.Fatalf("event = %+v", ev)
	}
	if c.R[3] != 42 {
		t.Errorf("r3 = %d, want 42", c.R[3])
	}
	if c.R[SP] != tStack+0x2000 {
		t.Errorf("sp = 0x%x, want balanced", c.R[SP])
	}
}

func TestWordLoadStoreAndSubword(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li32(3, int32(tData))
		a.Li32(4, 0x11223344|-0x80000000)
		a.Stw(4, 3, 0)
		a.Lwz(5, 3, 0)
		a.Lbz(6, 3, 0) // big-endian: first byte is 0x91
		a.Lhz(7, 3, 2) // low half 0x3344
		a.Lha(8, 3, 0) // 0x9122 sign-extends
		a.Sth(4, 3, 8)
		a.Stb(4, 3, 12)
		a.Halt()
	})
	run(t, c, 100)
	if c.R[5] != 0x91223344 {
		t.Errorf("lwz = 0x%x", c.R[5])
	}
	if c.R[6] != 0x91 {
		t.Errorf("lbz = 0x%x, want big-endian MSB 0x91", c.R[6])
	}
	if c.R[7] != 0x3344 {
		t.Errorf("lhz = 0x%x", c.R[7])
	}
	if c.R[8] != 0xffff9122 {
		t.Errorf("lha = 0x%x", c.R[8])
	}
	if got := c.Mem.RawRead(tData+8, 2); got != 0x3344 {
		t.Errorf("sth wrote 0x%x", got)
	}
	if got := c.Mem.RawRead(tData+12, 1); got != 0x44 {
		t.Errorf("stb wrote 0x%x", got)
	}
}

func TestStwuFramePush(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Stwu(SP, SP, -32)
		a.Halt()
	})
	oldSP := c.R[SP]
	run(t, c, 10)
	if c.R[SP] != oldSP-32 {
		t.Errorf("sp = 0x%x, want 0x%x", c.R[SP], oldSP-32)
	}
	if got := c.Mem.RawRead(oldSP-32, 4); got != oldSP {
		t.Errorf("back chain = 0x%x, want 0x%x", got, oldSP)
	}
}

func TestExceptionClassification(t *testing.T) {
	tests := []struct {
		name string
		prog func(a *Asm)
		want isa.CrashCause
	}{
		{"bad area null", func(a *Asm) {
			a.Li(11, 1)
			a.Lwz(9, 11, 76) // the Figure 9 shape: lwz r9,76(r11) with r11=1
		}, isa.CauseBadArea},
		{"bad area unmapped", func(a *Asm) {
			a.Li32(3, 0x70000)
			a.Lwz(4, 3, 0)
		}, isa.CauseBadArea},
		{"alignment", func(a *Asm) {
			a.Li32(3, int32(tData+1))
			a.Lwz(4, 3, 0)
		}, isa.CauseAlignment},
		{"wild address is bad area", func(a *Asm) {
			a.Li32(3, 0x7ff00000)
			a.Lwz(4, 3, 0)
		}, isa.CauseBadArea},
		{"machine check in bus window", func(a *Asm) {
			a.Lis(3, -0x1000) // 0xF0000000
			a.Lwz(4, 3, 0)
		}, isa.CauseMachineCheck},
		{"bus error write to code", func(a *Asm) {
			a.Li32(3, int32(tCode))
			a.Stw(4, 3, 0)
		}, isa.CauseBusError},
		{"illegal word", func(a *Asm) { a.IllegalWord() }, isa.CauseIllegalInstr},
		{"trap", func(a *Asm) { a.Trap() }, isa.CauseBadTrap},
		{"twi conditional taken", func(a *Asm) {
			a.Li(3, 0)
			a.Twi(4, 3, 0) // trap if r3 == 0
		}, isa.CauseBadTrap},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newTestCPU(t, tt.prog)
			ev := run(t, c, 20)
			if ev.Kind != isa.EvException || ev.Cause != tt.want {
				t.Errorf("event = %+v, want %v", ev, tt.want)
			}
		})
	}
}

func TestDARSetOnBadArea(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(11, 1)
		a.Lwz(9, 11, 76)
	})
	ev := run(t, c, 10)
	if ev.FaultAddr != 77 || c.SPR[SprDAR] != 77 {
		t.Errorf("fault addr %d, DAR %d, want 77 (0x4d as in Fig. 9)", ev.FaultAddr, c.SPR[SprDAR])
	}
}

func TestTwiNotTaken(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 5)
		a.Twi(4, 3, 0) // trap if equal: not taken
		a.Halt()
	})
	if ev := run(t, c, 10); ev.Kind != isa.EvHalt {
		t.Errorf("twi taken unexpectedly: %+v", ev)
	}
}

func TestMSRTranslationBitsMachineCheck(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li32(3, int32(tData))
		a.Lwz(4, 3, 0)
		a.Halt()
	})
	c.MSR &^= MSRDR // data translation flipped off
	ev := run(t, c, 10)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseMachineCheck {
		t.Errorf("event = %+v, want machine check", ev)
	}

	c2 := newTestCPU(t, func(a *Asm) { a.Nop() })
	c2.MSR &^= MSRIR
	ev = c2.Step()
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseMachineCheck {
		t.Errorf("IR: event = %+v, want machine check", ev)
	}
}

func TestSyscallEvent(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(0, 4)
		a.Sc()
	})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvSyscall || ev.SysNo != 4 {
		t.Errorf("event = %+v, want syscall 4", ev)
	}
}

func TestInterruptDeliveryAndRfi(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 1)
		a.Label("spin")
		a.B("spin")
		a.Label("handler")
		a.Li(3, 2)
		a.Rfi()
	})
	c.Step()
	spinPC := c.PC
	ev := c.DeliverInterrupt(tCode+8, 0)
	if ev.Kind != isa.EvNone {
		t.Fatalf("DeliverInterrupt: %+v", ev)
	}
	if c.SPR[SprSRR0] != spinPC {
		t.Errorf("SRR0 = 0x%x, want 0x%x", c.SPR[SprSRR0], spinPC)
	}
	for i := 0; i < 10 && c.PC != spinPC; i++ {
		if ev := c.Step(); ev.Kind != isa.EvNone {
			t.Fatalf("handler: %+v", ev)
		}
	}
	if c.PC != spinPC || c.R[3] != 2 {
		t.Errorf("after rfi: pc=0x%x r3=%d", c.PC, c.R[3])
	}
	if c.R[SP] != tStack+0x2000 {
		t.Errorf("sp not restored: 0x%x", c.R[SP])
	}
}

func TestUserModePrivilegeChecks(t *testing.T) {
	progs := map[string]func(a *Asm){
		"mtmsr":       func(a *Asm) { a.Mtmsr(3) },
		"mfmsr":       func(a *Asm) { a.Mfmsr(3) },
		"rfi":         func(a *Asm) { a.Rfi() },
		"mtspr sprg2": func(a *Asm) { a.Mtspr(SprSPRG2, 3) },
		"mfspr hid0":  func(a *Asm) { a.Mfspr(3, SprHID0) },
		"ctxsw":       func(a *Asm) { a.CtxSw(3, 4) },
		"halt":        func(a *Asm) { a.Halt() },
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			c := newTestCPU(t, prog)
			c.Mem.Map(tCode, 0x1000, mem.Present|mem.UserOK)
			c.MSR |= MSRPR
			ev := run(t, c, 5)
			if ev.Kind != isa.EvException || ev.Cause != isa.CauseIllegalInstr {
				t.Errorf("event = %+v, want privileged-instruction program check", ev)
			}
		})
	}
}

func TestUserCanAccessLRCTR(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 64)
		a.Mtctr(3)
		a.Mfctr(4)
		a.Mtlr(3)
		a.Mflr(5)
		a.Sc()
	})
	c.Mem.Map(tCode, 0x1000, mem.Present|mem.UserOK)
	c.MSR |= MSRPR
	ev := run(t, c, 10)
	if ev.Kind != isa.EvSyscall {
		t.Fatalf("event = %+v", ev)
	}
	if c.R[4] != 64 || c.R[5] != 64 {
		t.Errorf("r4=%d r5=%d, want 64, 64", c.R[4], c.R[5])
	}
}

func TestHID0BTICCorruption(t *testing.T) {
	// Enabling the BTIC with invalid content makes some taken branches
	// raise illegal-instruction exceptions (paper §5.2, SPR1008).
	c := newTestCPU(t, func(a *Asm) {
		a.Li(3, 0)
		a.Li(4, 1000)
		a.Mtctr(4)
		a.Label("loop")
		a.Addi(3, 3, 1)
		a.Bdnz("loop")
		a.Halt()
	})
	c.SPR[SprHID0] |= HID0BTIC
	ev := run(t, c, 5000)
	if ev.Kind != isa.EvException || ev.Cause != isa.CauseIllegalInstr {
		t.Errorf("event = %+v, want illegal instruction from poisoned BTIC", ev)
	}
}

func TestInstructionAndDataBreakpoints(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Nop()
		a.Li32(3, int32(tData))
		a.Li(4, 9)
		a.Stw(4, 3, 0x20)
		a.Lwz(5, 3, 0x20)
		a.Halt()
	})
	c.Debug.Set(0, isa.Breakpoint{Kind: isa.BreakInstruction, Addr: tCode + 4})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvInstrBreak || ev.BreakAddr != tCode+4 {
		t.Fatalf("event = %+v, want instr break", ev)
	}
	c.Debug.Clear(0)
	c.Debug.Set(1, isa.Breakpoint{Kind: isa.BreakData, Addr: tData + 0x20, Len: 4})
	ev = run(t, c, 10)
	if ev.Kind != isa.EvDataBreak || ev.Access != isa.AccessWrite {
		t.Fatalf("event = %+v, want data-break write", ev)
	}
	ev = run(t, c, 10)
	if ev.Kind != isa.EvDataBreak || ev.Access != isa.AccessRead {
		t.Fatalf("event = %+v, want data-break read", ev)
	}
}

func TestCtxSwEvent(t *testing.T) {
	c := newTestCPU(t, func(a *Asm) {
		a.Li32(3, 0x4100)
		a.Li32(4, 0x4200)
		a.CtxSw(3, 4)
	})
	ev := run(t, c, 10)
	if ev.Kind != isa.EvCtxSw || ev.Prev != 0x4100 || ev.Next != 0x4200 {
		t.Errorf("event = %+v", ev)
	}
}

func TestRlwinmMasks(t *testing.T) {
	tests := []struct {
		mb, me uint8
		want   uint32
	}{
		{0, 31, 0xFFFFFFFF},
		{0, 0, 0x80000000},
		{31, 31, 0x00000001},
		{24, 31, 0x000000FF},
		{0, 7, 0xFF000000},
		{28, 3, 0xF000000F}, // wrapped
	}
	for _, tt := range tests {
		if got := maskMBME(tt.mb, tt.me); got != tt.want {
			t.Errorf("maskMBME(%d,%d) = 0x%08x, want 0x%08x", tt.mb, tt.me, got, tt.want)
		}
	}
}

func TestSystemRegistersCount(t *testing.T) {
	regs := SystemRegisters()
	if len(regs) != 99 {
		t.Errorf("G4 system register count = %d, want 99 (as in the paper)", len(regs))
	}
	names := make(map[string]bool)
	c := NewCPU(mem.New(1<<16, binary.BigEndian))
	for _, r := range regs {
		if names[r.Name] {
			t.Errorf("duplicate register %q", r.Name)
		}
		names[r.Name] = true
		old := r.Get(c)
		r.Set(c, old^0x10)
		if r.Get(c) != old^0x10 {
			t.Errorf("register %q does not round-trip", r.Name)
		}
		r.Set(c, old)
	}
	for _, want := range []string{"MSR", "SPRG2", "HID0", "SRR0", "SRR1", "SDR1"} {
		if !names[want] {
			t.Errorf("missing register %q", want)
		}
	}
}

func TestMixedWidthStructAccessMasksHighBits(t *testing.T) {
	// The G4 data-sensitivity mechanism: a word-padded boolean flag field
	// ignores flips in its unused high bits when consumed via cmpwi against
	// small constants... but the load itself is a full 32-bit word. Verify a
	// flip in bit 20 of a 0/1 flag still compares nonzero (manifests) while
	// the same flip on a field only tested via andi. mask 0x1 is masked out.
	c := newTestCPU(t, func(a *Asm) {
		a.Li32(3, int32(tData))
		a.Lwz(4, 3, 0)
		a.AndiRc(5, 4, 1) // consume only bit 0
		a.Halt()
	})
	c.Mem.RawWrite(tData, 4, 1|1<<20) // flag=1 with a flipped high bit
	run(t, c, 10)
	if c.R[5] != 1 {
		t.Errorf("masked consumption = %d, want 1 (flip in unused bit is benign)", c.R[5])
	}
}

func TestDisasmRange(t *testing.T) {
	a := NewAsm()
	a.Mflr(0)
	a.Stwu(SP, SP, -32)
	code, err := a.Link(tCode, nil)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint32{
		binary.BigEndian.Uint32(code),
		binary.BigEndian.Uint32(code[4:]),
		0, // illegal
	}
	lines := DisasmRange(words, tCode)
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestMoreGoldenEncodings(t *testing.T) {
	// Additional golden PowerPC encodings cross-checked against the ISA
	// manual, covering SPR field swizzling and rlwinm fields.
	tests := []struct {
		name string
		emit func(a *Asm)
		want uint32
	}{
		{"mtlr r0", func(a *Asm) { a.Mtlr(0) }, 0x7C0803A6},
		{"mfctr r9", func(a *Asm) { a.Mfctr(9) }, 0x7D2902A6},
		{"mfspr r3,SPRG2", func(a *Asm) { a.Mfspr(3, SprSPRG2) }, 0x7C7242A6},
		{"mtspr SPRG2,r3", func(a *Asm) { a.Mtspr(SprSPRG2, 3) }, 0x7C7243A6},
		{"addi r1,r1,32", func(a *Asm) { a.Addi(SP, SP, 32) }, 0x38210020},
		{"lbz r5,3(r4)", func(a *Asm) { a.Lbz(5, 4, 3) }, 0x88A40003},
		{"rlwinm r4,r3,8,0,23 (slwi 8)", func(a *Asm) { a.Slwi(4, 3, 8) }, 0x5464402E},

		{"mfmsr r31", func(a *Asm) { a.Mfmsr(31) }, 0x7FE000A6},
		{"twi 31,r0,0 unconditional-ish", func(a *Asm) { a.Twi(31, 0, 0) }, 0x0FE00000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewAsm()
			tt.emit(a)
			code, err := a.Link(0, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := binary.BigEndian.Uint32(code)
			if got != tt.want {
				t.Errorf("encoded 0x%08X, want 0x%08X", got, tt.want)
			}
			// And the decoder must round-trip it.
			if _, err := Decode(got); err != nil {
				t.Errorf("golden encoding does not decode: %v", err)
			}
		})
	}
}

func TestBdnzBackwardEncoding(t *testing.T) {
	a := NewAsm()
	a.Label("x")
	a.Nop()
	a.Bdnz("x")
	code, err := a.Link(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(code[4:]); got != 0x4200FFFC {
		t.Errorf("bdnz -4 encoded 0x%08X, want 0x4200FFFC", got)
	}
}

func TestSPRFieldSwizzleProperty(t *testing.T) {
	// Property: the split SPR field decodes back to the encoded number for
	// every 10-bit SPR.
	for spr := 0; spr < 1024; spr++ {
		a := NewAsm()
		a.Mfspr(5, uint16(spr))
		code, err := a.Link(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := binary.BigEndian.Uint32(code)
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("spr %d: %v", spr, err)
		}
		if in.SPR != uint16(spr) {
			t.Fatalf("spr %d decoded as %d", spr, in.SPR)
		}
	}
}
