package risc

import (
	"encoding/binary"
	"fmt"

	"kfi/internal/isa"
	"kfi/internal/mem"
	"kfi/internal/platform"
)

// This file is the G4-class platform's single registration point: the
// Descriptor (bus window, crash semantics, latency stages, instruction
// boundaries, the snapshot CPU codec) and the machine-facing Core adapter.

// Latency-model stages (the paper's Figure 3) for the G4 exception path:
// its hardware stage is longer and its software stage runs the kernel's
// checking wrapper before the handler — which is why in the paper even
// immediate G4 crashes land above the 3k bucket while immediate P4 crashes
// land below it (Figure 16).
const (
	stageHardware = 2400
	stageSoftware = 800
)

// Boot values and sensitivity masks for the G4 translation registers the
// exception path depends on. Flips in the masked bits break the kernel's
// address translation and surface at the next exception; flips in the
// unmasked (reserved / fine-grained) bits pass, which is why only some bits
// of these registers are error-sensitive (paper §5.2).
const (
	bootSDR1 = 0x00FF0000
	sdr1Mask = 0xFFFF0000 // HTABORG: the hashed page table base
	bootBAT  = 0xC0001FFE
	batMask  = 0xFFFE0003 // BEPI block address + Vs/Vp valid bits

	// SDR1LiveMask and BATLiveMask expose the vetted bit ranges: the only
	// bits of SDR1 and the boot BAT pair the exception-delivery path ever
	// consults. The static analyzer treats all other bits as inert.
	SDR1LiveMask uint32 = sdr1Mask
	BATLiveMask  uint32 = batMask
)

type descriptor struct{}

func (descriptor) ID() isa.Platform  { return isa.RISC }
func (descriptor) Aliases() []string { return []string{"risc", "ppc"} }

func (descriptor) NewCore(m *mem.Memory) platform.Core {
	return &coreAdapter{cpu: NewCPU(m), mem: m}
}

func (descriptor) NewCPUState() platform.CPUState { return &State{} }

// BusWindow: the G4's processor-local bus hangs (machine check) only in this
// unclaimed window; other wild kernel pointers fault as "kernel access of a
// bad area" (paper §5.2).
func (descriptor) BusWindow() (uint32, uint32, bool) { return 0xF0000000, 0xF8000000, true }

// KernelStackSize is the G4 kernel's 8 KiB per-process kernel stack.
func (descriptor) KernelStackSize() uint32 { return 0x2000 }

func (descriptor) CrashStages() (uint64, uint64) { return stageHardware, stageSoftware }

func (descriptor) RegisterLabels() (string, string) { return "NIP", "R1 " }

// CrashMessage renders the crash the way the G4 kernel would print it.
func (descriptor) CrashMessage(cause isa.CrashCause, pc, faultAddr, sp uint32) string {
	switch cause {
	case isa.CauseBadArea:
		return fmt.Sprintf("kernel access of bad area, sig: 11 [#1] dar %08x nip %08x", faultAddr, pc)
	case isa.CauseIllegalInstr:
		return fmt.Sprintf("kernel tried to execute illegal instruction at nip %08x", pc)
	case isa.CauseStackOverflow:
		return fmt.Sprintf("kernel stack overflow, r1 %08x nip %08x", sp, pc)
	case isa.CauseMachineCheck:
		return fmt.Sprintf("Machine check in kernel mode, dar %08x nip %08x", faultAddr, pc)
	case isa.CauseAlignment:
		return fmt.Sprintf("alignment exception, dar %08x nip %08x", faultAddr, pc)
	case isa.CausePanic:
		return "Kernel panic!!!"
	case isa.CauseBusError:
		return fmt.Sprintf("bus error (protection fault), dar %08x nip %08x", faultAddr, pc)
	case isa.CauseBadTrap:
		return fmt.Sprintf("kernel bad trap at nip %08x", pc)
	default:
		return fmt.Sprintf("unknown exception at nip %08x", pc)
	}
}

// InstructionBoundaries: every instruction is one aligned 32-bit word.
func (descriptor) InstructionBoundaries(code []byte, base uint32) []platform.InstrRef {
	var out []platform.InstrRef
	for off := uint32(0); off+4 <= uint32(len(code)); off += 4 {
		out = append(out, platform.InstrRef{Addr: base + off, Size: 4})
	}
	return out
}

func init() { platform.Register(descriptor{}) }

// CPUOf returns the concrete RISC CPU behind a platform core (nil when the
// core is not a RISC core).
func CPUOf(c platform.Core) *CPU {
	if a, ok := c.(*coreAdapter); ok {
		return a.cpu
	}
	return nil
}

// coreAdapter adapts risc.CPU to platform.Core.
type coreAdapter struct {
	cpu *CPU
	mem *mem.Memory
	// expectedSPRG2 is the boot-installed exception scratch pointer the
	// delivery vetting compares against (the machine config's SPRG2Value).
	expectedSPRG2 uint32
}

var _ platform.Core = (*coreAdapter)(nil)

func (c *coreAdapter) Step() isa.Event { return c.cpu.Step() }
func (c *coreAdapter) Reset()          { c.cpu.Reset() }
func (c *coreAdapter) PC() uint32      { return c.cpu.PC }
func (c *coreAdapter) SetPC(v uint32)  { c.cpu.PC = v }
func (c *coreAdapter) SP() uint32      { return c.cpu.R[SP] }
func (c *coreAdapter) SetSP(v uint32)  { c.cpu.R[SP] = v }
func (c *coreAdapter) Mode() isa.Mode  { return c.cpu.Mode() }

func (c *coreAdapter) InterruptsEnabled() bool { return c.cpu.InterruptsEnabled() }

// InstallBootState sets the exception scratch pointer and the boot-firmware
// translation state (page-table base and kernel BAT mappings) the exception
// path depends on.
func (c *coreAdapter) InstallBootState(bs platform.BootState) {
	c.expectedSPRG2 = bs.SPRG2
	c.cpu.SPR[SprSPRG2] = bs.SPRG2
	c.cpu.SPR[SprSDR1] = bootSDR1
	c.cpu.SPR[SprIBAT0U] = bootBAT
	c.cpu.SPR[SprDBAT0U] = bootBAT
}

// VetDelivery checks the architectural state the G4 exception entry depends
// on. Corrupted translation state (page-table base or kernel BATs) derails
// the very first translation of the exception path: the kernel reports an
// access to a bad area at a wild address. The entry path saves scratch state
// through SPRG2: a corrupted SPRG2 makes those stores fault (kernel access
// of a bad area, or a machine check beyond the bus limit); if the wild
// pointer happens to hit mapped memory, the entry path continues into it and
// the OS ends up executing from an essentially random location (paper §5.2).
func (c *coreAdapter) VetDelivery() platform.Delivery {
	crash := func(cause isa.CrashCause, addr uint32) platform.Delivery {
		return platform.Delivery{Crash: true,
			Event: isa.Event{Kind: isa.EvException, Cause: cause, FaultAddr: addr}}
	}
	if got := c.cpu.SPR[SprSDR1]; (got^bootSDR1)&sdr1Mask != 0 {
		return crash(isa.CauseBadArea, got)
	}
	if got := c.cpu.SPR[SprIBAT0U]; (got^bootBAT)&batMask != 0 {
		return crash(isa.CauseBadArea, got)
	}
	if got := c.cpu.SPR[SprDBAT0U]; (got^bootBAT)&batMask != 0 {
		return crash(isa.CauseBadArea, got)
	}
	if got := c.cpu.SPR[SprSPRG2]; got != c.expectedSPRG2 {
		if f := c.mem.Check(got&^3, 32, true, false); f != nil {
			cause := isa.CauseBadArea
			if f.Kind == mem.FaultBus {
				cause = isa.CauseMachineCheck
			}
			return crash(cause, got)
		}
		return platform.Delivery{Hijack: true, HijackPC: got}
	}
	return platform.Delivery{}
}

func (c *coreAdapter) DeliverInterrupt(handler, ksp uint32) isa.Event {
	return c.cpu.DeliverInterrupt(handler, ksp)
}

func (c *coreAdapter) SetSyscallResult(v uint32) { c.cpu.R[3] = v }

func (c *coreAdapter) SyscallArgs() (uint32, uint32, uint32) {
	return c.cpu.R[3], c.cpu.R[4], c.cpu.R[5]
}

// SystemRegisters binds the G4 system-register file to this core.
func (c *coreAdapter) SystemRegisters() []platform.SysReg {
	var out []platform.SysReg
	for _, r := range SystemRegisters() {
		r := r
		out = append(out, platform.SysReg{Name: r.Name, Bits: r.Bits,
			Get: func() uint32 { return r.Get(c.cpu) },
			Set: func(v uint32) { r.Set(c.cpu, v) }})
	}
	return out
}

// RISC context: 32 GPRs, PC, LR, CTR, CR, MSR.
func (c *coreAdapter) CtxWords() int { return 37 }

func (c *coreAdapter) SaveContext(addr uint32) {
	for i := 0; i < 32; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, c.cpu.R[i])
	}
	c.mem.RawWrite(addr+128, 4, c.cpu.PC)
	c.mem.RawWrite(addr+132, 4, c.cpu.LR)
	c.mem.RawWrite(addr+136, 4, c.cpu.CTR)
	c.mem.RawWrite(addr+140, 4, c.cpu.CR)
	c.mem.RawWrite(addr+144, 4, c.cpu.MSR)
}

func (c *coreAdapter) RestoreContext(addr uint32) {
	for i := 0; i < 32; i++ {
		c.cpu.R[i] = c.mem.RawRead(addr+uint32(i)*4, 4)
	}
	c.cpu.PC = c.mem.RawRead(addr+128, 4)
	c.cpu.LR = c.mem.RawRead(addr+132, 4)
	c.cpu.CTR = c.mem.RawRead(addr+136, 4)
	c.cpu.CR = c.mem.RawRead(addr+140, 4)
	c.cpu.MSR = c.mem.RawRead(addr+144, 4)
}

func (c *coreAdapter) InitContext(addr, entry, sp uint32, user bool) {
	for i := 0; i < 37; i++ {
		c.mem.RawWrite(addr+uint32(i)*4, 4, 0)
	}
	c.mem.RawWrite(addr+4, 4, sp) // r1
	c.mem.RawWrite(addr+128, 4, entry)
	msr := uint32(MSRME | MSRIR | MSRDR | MSREE)
	if user {
		msr |= MSRPR
	}
	c.mem.RawWrite(addr+144, 4, msr)
}

// CtxSPOffset: r1 is the stack pointer.
func (c *coreAdapter) CtxSPOffset() uint32 { return 4 }

// CtxModeUser reads MSR[PR] from the saved context.
func (c *coreAdapter) CtxModeUser(addr uint32) bool {
	return c.mem.RawRead(addr+144, 4)&MSRPR != 0
}

func (c *coreAdapter) SetStackBounds(lo, hi uint32) {
	c.cpu.StackLo, c.cpu.StackHi = lo, hi
}

// StackPointerInBounds implements the G4 kernel's exception-entry wrapper:
// it validates the stack pointer against the current 8 KiB kernel stack.
func (c *coreAdapter) StackPointerInBounds() bool {
	if c.cpu.StackHi == 0 {
		return true
	}
	sp := c.cpu.R[SP]
	return sp > c.cpu.StackLo && sp <= c.cpu.StackHi
}

// CrashDumpPossible: the G4 handler switches to the SPRG2 scratch area, so
// the dump survives stack corruption but not SPRG2 corruption.
func (c *coreAdapter) CrashDumpPossible() bool {
	sprg2 := c.cpu.SPR[SprSPRG2]
	return c.mem.Check(sprg2, 64, true, false) == nil
}

// BeginCall places the arguments in r3.. and the sentinel in the link
// register (the SysV PPC host-call convention).
func (c *coreAdapter) BeginCall(entry uint32, args []uint32) {
	for i, v := range args {
		c.cpu.R[3+i] = v
	}
	c.cpu.LR = platform.CallSentinel
	c.cpu.PC = entry
}

func (c *coreAdapter) CallDone(nargs int) (uint32, bool) {
	if c.cpu.PC != platform.CallSentinel&^3 {
		return 0, false
	}
	return c.cpu.R[3], true
}

func (c *coreAdapter) SaveCPUState() platform.CPUState {
	s := c.cpu.SaveState()
	return &s
}

func (c *coreAdapter) RestoreCPUState(st platform.CPUState) error {
	s, ok := st.(*State)
	if !ok {
		return fmt.Errorf("risc: restoring %T onto a RISC core", st)
	}
	c.cpu.RestoreState(s)
	return nil
}

// DisasmAt renders the instruction at pc (best effort; raw word on failure).
func (c *coreAdapter) DisasmAt(pc uint32) string {
	bs := c.mem.RawBytes(pc, 4)
	if bs == nil {
		return "<unmapped>"
	}
	w := binary.BigEndian.Uint32(bs)
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".long 0x%08x", w)
	}
	return in.String()
}

func (c *coreAdapter) Clock() *isa.CycleCounter { return &c.cpu.Clk }
func (c *coreAdapter) Debug() *isa.DebugUnit    { return &c.cpu.Debug }

func (c *coreAdapter) SetTrace(fn func(pc uint32, cost uint8)) { c.cpu.Trace = fn }

func (c *coreAdapter) PendingDataBreak() (int, isa.DataAccess, uint32, bool) {
	return c.cpu.PendingDataBreak()
}

// EncodeSnapshot serializes the CPU block in the snapshot wire format. The
// field order is frozen: it is the on-disk format PR 1 shipped.
func (s *State) EncodeSnapshot(w *platform.SnapWriter) {
	for _, r := range s.R {
		w.U32(r)
	}
	w.U32(s.PC)
	w.U32(s.LR)
	w.U32(s.CTR)
	w.U32(s.XER)
	w.U32(s.CR)
	w.U32(s.MSR)
	for _, r := range s.SPR {
		w.U32(r)
	}
	w.U32(s.StackLo)
	w.U32(s.StackHi)
	w.Bool(s.BTICValid)
	w.U32(s.BTICCounter)
	w.CPUTail(s.Debug, s.Clock, s.PendingSlot, s.PendingAccess, s.PendingAddr)
}

// DecodeSnapshot fills the state from the snapshot wire format.
func (s *State) DecodeSnapshot(r *platform.SnapReader) {
	for i := range s.R {
		s.R[i] = r.U32()
	}
	s.PC = r.U32()
	s.LR = r.U32()
	s.CTR = r.U32()
	s.XER = r.U32()
	s.CR = r.U32()
	s.MSR = r.U32()
	for i := range s.SPR {
		s.SPR[i] = r.U32()
	}
	s.StackLo = r.U32()
	s.StackHi = r.U32()
	s.BTICValid = r.Bool()
	s.BTICCounter = r.U32()
	r.CPUTail(&s.Debug, &s.Clock, &s.PendingSlot, &s.PendingAccess, &s.PendingAddr)
}
