package main

import (
	"strings"
	"testing"
)

func TestTraceDiffReportsDivergence(t *testing.T) {
	var out strings.Builder
	// sub→and on the frame setup destroys ESP: reliably divergent.
	err := run([]string{"-platform", "p4", "-func", "getblk", "-instr", "5", "-bit", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"flipping bit 0", "first divergence", "getblk"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestTraceDiffFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "p4"}, &out); err == nil {
		t.Error("missing -func accepted")
	}
	if err := run([]string{"-platform", "p4", "-func", "getblk", "-bit", "9"}, &out); err == nil {
		t.Error("bit 9 accepted")
	}
	if err := run([]string{"-platform", "vax", "-func", "getblk"}, &out); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-platform", "p4", "-func", "nosuchfunc"}, &out); err == nil {
		t.Error("unknown function accepted")
	}
	if err := run([]string{"-platform", "p4", "-func", "spin_lock", "-instr", "9999"}, &out); err == nil {
		t.Error("out-of-function instruction index accepted")
	}
}

func TestTraceDiffG4AndBurst(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-platform", "g4", "-func", "csum_partial",
		"-instr", "2", "-bit", "5", "-burst", "2", "-context", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "G4-class") {
		t.Errorf("missing platform banner:\n%s", got)
	}
	// Whatever the outcome class, the report must be conclusive: either a
	// divergence or an explicit data-only / absorbed verdict.
	if !strings.Contains(got, "first divergence") &&
		!strings.Contains(got, "no control-flow divergence") {
		t.Errorf("inconclusive report:\n%s", got)
	}
}
