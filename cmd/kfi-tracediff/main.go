// Kfi-tracediff pinpoints where a single code injection first derails the
// kernel: it runs the benchmark clean, re-runs it with the bit flip applied
// through the same breakpoint mechanism the campaigns use, and prints the
// instruction at which the two retired-instruction streams split, with
// symbolized context on both sides — the instruction-granularity version of
// the paper's Figure 7 propagation analysis.
//
//	kfi-tracediff -platform g4 -func getblk -instr 2 -bit 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kfi"
	"kfi/internal/cc"
	"kfi/internal/cisc"
	"kfi/internal/cli"
	"kfi/internal/inject"
	"kfi/internal/tracediff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-tracediff:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-tracediff", flag.ContinueOnError)
	var (
		platformFlag = fs.String("platform", "p4", "target platform: p4 or g4")
		fn           = fs.String("func", "", "kernel function to corrupt (required)")
		instr        = fs.Int("instr", 0, "instruction index within the function")
		byteOff      = fs.Int("byte", 0, "byte offset within the instruction")
		bit          = fs.Int("bit", 0, "bit to flip (0-7)")
		burst        = fs.Int("burst", 1, "adjacent bits to flip")
		context      = fs.Int("context", 8, "instructions of context on each side")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fn == "" {
		return fmt.Errorf("-func is required")
	}
	if *bit < 0 || *bit > 7 {
		return fmt.Errorf("-bit must be 0-7")
	}

	platform, err := cli.ParsePlatform(*platformFlag)
	if err != nil {
		return err
	}

	sys, err := kfi.BuildSystem(platform, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	img := sys.Sys.KernelImage
	var fr cc.FuncRange
	found := false
	for _, f := range img.Funcs {
		if f.Name == *fn {
			fr, found = f, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown kernel function %q (try cmd/kfi-asm -symbols)", *fn)
	}

	addr, err := instrAddr(sys, fr, *instr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%v: flipping bit %d of byte %d at %s+0x%x (0x%08X)\n\n",
		platform, *bit, *byteOff, *fn, addr-fr.Start, addr)

	d, err := tracediff.Diff(sys.Sys, inject.Target{
		Campaign: inject.CampCode,
		Addr:     addr,
		ByteOff:  uint8(*byteOff),
		Bit:      uint(*bit),
		Burst:    uint8(*burst),
		Func:     *fn,
	}, *context, 0)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, d.Render())
	return err
}

// instrAddr walks instruction boundaries to the n-th instruction start.
func instrAddr(sys *kfi.System, fr cc.FuncRange, n int) (uint32, error) {
	addr := fr.Start
	for i := 0; i < n; i++ {
		dis := sys.Sys.Machine.Disasm(addr)
		size, err := instrSize(sys, addr)
		if err != nil {
			return 0, fmt.Errorf("cannot step past %q at 0x%X: %w", dis, addr, err)
		}
		addr += size
		if addr >= fr.End {
			return 0, fmt.Errorf("-instr %d is beyond the end of %s", n, fr.Name)
		}
	}
	return addr, nil
}

func instrSize(sys *kfi.System, addr uint32) (uint32, error) {
	if sys.Sys.Machine.RISCCPU() != nil {
		return 4, nil
	}
	bs := sys.Sys.Machine.Mem.RawBytes(addr, 9)
	if bs == nil {
		return 0, fmt.Errorf("address 0x%X out of range", addr)
	}
	in, err := cisc.Decode(bs)
	if err != nil {
		return 0, err
	}
	return uint32(in.Len), nil
}
