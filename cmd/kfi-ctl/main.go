// Kfi-ctl operates the campaign control plane: it runs the coordinator and
// worker-agent roles of internal/ctlplane and offers the operator verbs for
// a running service.
//
//	kfi-ctl serve -listen 127.0.0.1:9380 -journal /var/kfi/journals
//	kfi-ctl work  -coordinator 127.0.0.1:9380 -name worker-a
//	kfi-ctl status -coordinator 127.0.0.1:9380
//	kfi-ctl watch  -coordinator 127.0.0.1:9380 <campaign-id>
//	kfi-ctl cancel -coordinator 127.0.0.1:9380 <campaign-id>
//	kfi-ctl drain  -coordinator 127.0.0.1:9380
//
// Campaigns are submitted with `kfi-campaign -submit -coordinator=URL ...`,
// which derives the same per-(platform, campaign) specs a local run would
// execute.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"kfi/internal/cli"
	"kfi/internal/ctlplane"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-ctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: kfi-ctl <serve|work|status|watch|cancel|drain> [flags]")
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "serve":
		return serve(rest, w)
	case "work":
		return work(rest, w)
	case "status":
		return status(rest, w)
	case "watch":
		return watch(rest, w)
	case "cancel":
		return cancel(rest, w)
	case "drain":
		return drain(rest, w)
	}
	return usage()
}

// coordinatorClient parses the shared -coordinator flag and builds a client.
func coordinatorClient(fs *flag.FlagSet) (*ctlplane.Client, error) {
	coord := fs.Lookup("coordinator").Value.String()
	client, err := ctlplane.NewClient(coord)
	if err != nil {
		return nil, fmt.Errorf("-coordinator: %w", err)
	}
	return client, nil
}

func serve(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl serve", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:9380", "HTTP address to serve the control plane on")
		journal  = fs.String("journal", "", "directory for campaign journals and spec sidecars (required)")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second, "chunk lease lifetime without a heartbeat")
		chunk    = fs.Int("chunk", 0, "indices per lease (0 = auto)")
		quiet    = fs.Bool("quiet", false, "suppress per-event log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, err := cli.ParseListenAddr(*listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	if *journal == "" {
		return fmt.Errorf("-journal is required (it is the coordinator's durable state)")
	}
	cfg := ctlplane.Config{JournalDir: *journal, LeaseTTL: *leaseTTL, ChunkSize: *chunk}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(w, "kfi-ctl: "+format+"\n", args...)
		}
	}
	coord, err := ctlplane.NewCoordinator(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "coordinator serving on http://%s (journals in %s)\n", ln.Addr(), *journal)
	return http.Serve(ln, coord)
}

func work(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl work", flag.ContinueOnError)
	var (
		_          = fs.String("coordinator", "", "coordinator base URL (required)")
		name       = fs.String("name", "", "worker name for leases and logs (default host/pid derived)")
		poll       = fs.Duration("poll", 2*time.Second, "idle delay between lease polls")
		engineFlag = fs.String("engine", "", "override the execution engine for every leased chunk: interp, predecode, or translate (default: what each campaign spec selects)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := cli.ParseEngine(*engineFlag)
	if err != nil {
		return err
	}
	wname := *name
	if wname == "" {
		host, _ := os.Hostname()
		wname = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client, err := coordinatorClient(fs)
	if err != nil {
		return err
	}
	worker, err := ctlplane.NewWorker(ctlplane.WorkerConfig{
		Coordinator:  client.Base,
		Name:         wname,
		PollInterval: *poll,
		Engine:       engine,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "kfi-ctl[%s]: "+format+"\n", append([]any{wname}, args...)...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "worker %s polling %s\n", wname, client.Base)
	return worker.Run()
}

func status(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl status", flag.ContinueOnError)
	_ = fs.String("coordinator", "", "coordinator base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := coordinatorClient(fs)
	if err != nil {
		return err
	}
	if id := fs.Arg(0); id != "" {
		st, err := client.Status(id)
		if err != nil {
			return err
		}
		printStatus(w, st)
		return nil
	}
	svc, err := client.Service()
	if err != nil {
		return err
	}
	if svc.Draining {
		fmt.Fprintln(w, "service: DRAINING (no new leases)")
	}
	if len(svc.Campaigns) == 0 {
		fmt.Fprintln(w, "no campaigns")
	}
	for _, st := range svc.Campaigns {
		printStatus(w, st)
	}
	if svc.Crashes.Received > 0 {
		fmt.Fprintf(w, "crash telemetry: %d report(s)\n", svc.Crashes.Received)
		causes := make([]string, 0, len(svc.Crashes.ByCause))
		for c := range svc.Crashes.ByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			fmt.Fprintf(w, "  %-22s %d\n", c, svc.Crashes.ByCause[c])
		}
	}
	return nil
}

func printStatus(w io.Writer, st ctlplane.Status) {
	fmt.Fprintf(w, "%-28s %-9s %6d/%-6d chunks: %d pending, %d leased",
		st.ID, st.State, st.Done, st.Total, st.Pending, st.Leased)
	if st.Spec.Harden != "" {
		fmt.Fprintf(w, ", hardened (%s)", st.Spec.Harden)
	}
	if st.Counts.Detected > 0 {
		fmt.Fprintf(w, ", %d detected", st.Counts.Detected)
	}
	if st.Duplicates > 0 {
		fmt.Fprintf(w, ", %d dup rows", st.Duplicates)
	}
	if st.Err != "" {
		fmt.Fprintf(w, "  err: %s", st.Err)
	}
	fmt.Fprintln(w)
}

func watch(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl watch", flag.ContinueOnError)
	var (
		_        = fs.String("coordinator", "", "coordinator base URL (required)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := coordinatorClient(fs)
	if err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("usage: kfi-ctl watch -coordinator URL <campaign-id>")
	}
	for {
		st, err := client.Status(id)
		if err != nil {
			return err
		}
		printStatus(w, st)
		if st.State.Terminal() {
			if st.State != ctlplane.StateDone {
				return fmt.Errorf("campaign %s ended %s: %s", id, st.State, st.Err)
			}
			return nil
		}
		time.Sleep(*interval)
	}
}

func cancel(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl cancel", flag.ContinueOnError)
	_ = fs.String("coordinator", "", "coordinator base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := coordinatorClient(fs)
	if err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("usage: kfi-ctl cancel -coordinator URL <campaign-id>")
	}
	st, err := client.Cancel(id)
	if err != nil {
		return err
	}
	printStatus(w, st)
	return nil
}

func drain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-ctl drain", flag.ContinueOnError)
	_ = fs.String("coordinator", "", "coordinator base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client, err := coordinatorClient(fs)
	if err != nil {
		return err
	}
	svc, err := client.Drain()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "draining; %d campaign(s) on record\n", len(svc.Campaigns))
	return nil
}
