package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kfi/internal/ctlplane"
)

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no verb
		{"frobnicate"},                        // unknown verb
		{"serve", "-listen", "nope"},          // bad listen address
		{"serve", "-listen", "127.0.0.1:0"},   // missing -journal
		{"work", "-coordinator", "ftp://x:1"}, // bad coordinator scheme
		{"status", "-coordinator", ""},        // missing coordinator
		{"watch", "-coordinator", ""},
		{"cancel", "-coordinator", ""},
		{"drain", "-coordinator", ""},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// testService spins up a coordinator and returns its base URL.
func testService(t *testing.T) string {
	t.Helper()
	coord, err := ctlplane.NewCoordinator(ctlplane.Config{JournalDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	t.Cleanup(func() { srv.Close(); coord.Close() })
	return srv.URL
}

func TestStatusWatchCancelDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a guest system")
	}
	base := testService(t)
	client, err := ctlplane.NewClient(base)
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"status", "-coordinator", base}, &out); err != nil {
		t.Fatalf("status on empty service: %v", err)
	}
	if !strings.Contains(out.String(), "no campaigns") {
		t.Errorf("empty-service status output %q", out.String())
	}

	sub, err := client.Submit(ctlplane.Spec{Platform: "p4", Campaign: "stack", N: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// The coordinator only leases work; a worker must run the injections for
	// watch to ever see the campaign finish.
	worker, err := ctlplane.NewWorker(ctlplane.WorkerConfig{
		Coordinator:  base,
		Name:         "ctl-test-worker",
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run() }()
	defer worker.Stop()

	out.Reset()
	if err := run([]string{"watch", "-coordinator", base, "-interval", "5ms", sub.ID}, &out); err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("watch output never showed done:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"status", "-coordinator", base, sub.ID}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), sub.ID) {
		t.Errorf("single-campaign status output %q lacks the ID", out.String())
	}

	// Cancelling a finished campaign reports its (terminal) status.
	out.Reset()
	if err := run([]string{"cancel", "-coordinator", base, sub.ID}, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"drain", "-coordinator", base}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "draining") {
		t.Errorf("drain output %q", out.String())
	}
	if _, err := client.Submit(ctlplane.Spec{Platform: "p4", Campaign: "data", N: 4, Seed: 5}); err == nil {
		t.Error("submit succeeded after drain")
	}
	// Drain tells the worker's Run loop to exit cleanly.
	if err := <-workerDone; err != nil {
		t.Errorf("worker exited with %v", err)
	}
}
