// Command kfi-report re-renders the paper's tables and figures from raw
// injection logs written by kfi-campaign's -out flag. Because the logs carry
// every classified result, the report can be regenerated, filtered, and
// compared without re-running the (much slower) injection campaigns.
//
// Example:
//
//	kfi-campaign -platform both -campaign all -out results.jsonl
//	kfi-report results.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"kfi"
	"kfi/internal/cli"
	"kfi/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-report:", err)
		os.Exit(1)
	}
}

// splitKey maps a "p4/Stack" group key back to platform and campaign. The
// platform half resolves through the registry, so logs from any registered
// platform group correctly.
func splitKey(k string) (kfi.Platform, kfi.Campaign) {
	platform := kfi.P4
	name, rest, cut := strings.Cut(k, "/")
	if !cut {
		return platform, 0
	}
	if p, err := cli.ParsePlatform(name); err == nil {
		platform = p
	}
	for _, c := range kfi.AllCampaigns {
		if rest == c.String() {
			return platform, c
		}
	}
	return platform, 0
}

func run(args []string) error {
	fs := flag.NewFlagSet("kfi-report", flag.ContinueOnError)
	var (
		latency   = fs.Bool("latency", true, "print cycles-to-crash histograms")
		confusion = fs.Bool("confusion", true, "print predicted-vs-observed confusion matrices for sensed campaigns")
		causes    = fs.Bool("causes", true, "print crash-cause distributions")
		registers = fs.Bool("registers", true, "print per-register crash counts")
		compare   = fs.Bool("compare", false, "print measured values side-by-side with the paper's")
		ci        = fs.Bool("ci", false, "print 95% Wilson intervals for the manifestation rates")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: kfi-report [flags] results.jsonl...")
	}

	var recs []stats.Record
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		batch, err := stats.ReadResults(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, batch...)
	}

	groups := stats.GroupRecords(recs)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Println(stats.TableHeader())
	quarantined, detected := 0, 0
	for _, k := range keys {
		results := groups[k]
		c := stats.Summarize(results)
		fmt.Println(c.TableRow(k))
		quarantined += c.Quarantined
		detected += c.Detected
	}
	if quarantined > 0 {
		fmt.Printf("Quarantined (harness retry budget exhausted, excluded from the table): %d\n", quarantined)
	}
	// Logs written with `kfi-campaign -v` carry per-campaign engine-counter
	// summary records; render one line per group that has one.
	engines := stats.GroupEngineRecords(recs)
	for _, k := range keys {
		if rec, ok := engines[k]; ok {
			fmt.Printf("%s — %s\n", k, stats.EngineLine(rec.Engine, *rec.EngineStats))
		}
	}
	if detected > 0 {
		fmt.Printf("Detected by the hardened kernel's software fault detector: %d\n", detected)
	}
	fmt.Println()

	// Logs from hardened campaigns additionally get the detection-coverage
	// view: the paper-faithful columns above never count detections, so
	// render the coverage table whenever any group recorded one.
	if detected > 0 {
		fmt.Println(stats.CoverageHeader())
		for _, k := range keys {
			fmt.Println(stats.Summarize(groups[k]).CoverageRow(k))
		}
		fmt.Println()
	}

	if *confusion {
		for _, k := range keys {
			conf := stats.Confuse(groups[k])
			if conf.Annotated == 0 && conf.Cached == 0 {
				continue
			}
			fmt.Printf("%s — %s", k, conf.Render())
			fmt.Print(stats.RenderByTarget(stats.ConfuseByTarget(groups[k])))
			if secs := stats.CachedSections(groups[k]); len(secs) > 0 {
				fmt.Printf("  cached sections: %s\n", strings.Join(secs, ", "))
			}
			fmt.Println()
		}
	}

	if *ci {
		fmt.Println("95% Wilson intervals (sampling error at this campaign size):")
		for _, k := range keys {
			c := stats.Summarize(groups[k])
			base := c.ActivatedBase()
			if base == 0 {
				continue
			}
			mLo, mHi := stats.Wilson95(c.Manifested(), base)
			cLo, cHi := stats.Wilson95(c.Crash, base)
			fmt.Printf("  %-12s manifested %5.1f%% [%5.1f, %5.1f]   known crash %5.1f%% [%5.1f, %5.1f]   (n=%d)\n",
				k, 100*float64(c.Manifested())/float64(base), mLo, mHi,
				100*float64(c.Crash)/float64(base), cLo, cHi, base)
		}
		fmt.Println()
	}

	if *compare {
		fmt.Println("Paper vs measured (percentages of the activation base):")
		for _, k := range keys {
			platform, camp := splitKey(k)
			if camp == 0 {
				continue
			}
			if row := stats.CompareTableRow(platform, camp, stats.Summarize(groups[k])); row != "" {
				fmt.Println("  " + row)
			}
		}
		fmt.Println()
		for _, k := range keys {
			platform, camp := splitKey(k)
			if camp == 0 {
				continue
			}
			d := stats.CrashCauses(groups[k])
			if d.Total == 0 {
				continue
			}
			if out := stats.CompareCauses(platform, camp, d); out != "" {
				fmt.Printf("Crash causes vs paper, %s:\n%s\n", k, out)
			}
		}
	}

	for _, k := range keys {
		results := groups[k]
		platform := kfi.P4
		if k[:2] == "g4" {
			platform = kfi.G4
		}
		if *causes {
			d := stats.CrashCauses(results)
			if d.Total > 0 {
				fmt.Printf("Crash causes, %s\n%s\n", k, d.Render(platform))
			}
		}
		if *latency {
			h := stats.Latencies(results)
			if h.Total > 0 {
				fmt.Printf("Cycles-to-crash, %s\n%s\n", k, h.Render())
			}
		}
		if prop := stats.Propagate(results); prop.Crashes > 0 {
			fmt.Println(prop.Render())
		}
		if *registers {
			byReg := stats.ByRegister(results)
			if len(byReg) > 0 {
				names := make([]string, 0, len(byReg))
				for n := range byReg {
					names = append(names, n)
				}
				sort.Slice(names, func(i, j int) bool {
					if byReg[names[i]] != byReg[names[j]] {
						return byReg[names[i]] > byReg[names[j]]
					}
					return names[i] < names[j]
				})
				fmt.Printf("Manifesting registers, %s:\n", k)
				for _, n := range names {
					fmt.Printf("  %-12s %d\n", n, byReg[n])
				}
				fmt.Println()
			}
		}
	}
	return nil
}
