package main

import (
	"os"
	"path/filepath"
	"testing"

	"kfi"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/stats"
)

func TestSplitKey(t *testing.T) {
	tests := []struct {
		give     string
		platform kfi.Platform
		camp     kfi.Campaign
	}{
		{"p4/Stack", kfi.P4, kfi.Stack},
		{"g4/Code", kfi.G4, kfi.Code},
		{"g4/System Registers", kfi.G4, kfi.SysRegs},
		{"p4/???", kfi.P4, 0},
	}
	for _, tt := range tests {
		p, c := splitKey(tt.give)
		if p != tt.platform || c != tt.camp {
			t.Errorf("splitKey(%q) = %v, %v", tt.give, p, c)
		}
	}
}

func TestReportRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	results := []inject.Result{
		{Outcome: inject.OCrash, Activated: true, ActivationKnown: true,
			Cause: isa.CauseNULLPointer, Latency: 1500},
		{Outcome: inject.ONotManifested, Activated: true, ActivationKnown: true},
	}
	if err := stats.WriteResults(f, isa.CISC, inject.CampCode, results); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-compare", path}); err != nil {
		t.Fatalf("report run: %v", err)
	}
	if err := run([]string{}); err == nil {
		t.Error("missing file argument accepted")
	}
}

func TestReportCIAndRegisterSections(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	results := []inject.Result{
		{Outcome: inject.OCrash, Activated: true, ActivationKnown: true,
			Cause: isa.CauseGeneralProtection, Latency: 900,
			Target: inject.Target{Campaign: inject.CampSysReg, RegName: "FS"}},
		{Outcome: inject.ONotManifested, Activated: true, ActivationKnown: true,
			Target: inject.Target{Campaign: inject.CampSysReg, RegName: "CR3"}},
		{Outcome: inject.OHangUnknown, Activated: true, ActivationKnown: true,
			Target: inject.Target{Campaign: inject.CampSysReg, RegName: "EFLAGS"}},
	}
	if err := stats.WriteResults(f, isa.CISC, inject.CampSysReg, results); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, args := range [][]string{
		{"-ci", path},
		{"-registers", "-causes=false", "-latency=false", path},
		{"-compare", "-ci", path},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	if err := run([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestReportEmptyLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Errorf("empty log rejected: %v", err)
	}
	// Corrupt JSONL reports a useful error.
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("corrupt log accepted")
	}
}
