package main

import "testing"

func TestAsmModes(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"symbols", []string{"-platform", "p4", "-symbols"}},
		{"disasm p4", []string{"-platform", "p4", "-func", "memcpy"}},
		{"disasm g4", []string{"-platform", "g4", "-func", "memcpy"}},
		{"flip matrix p4", []string{"-platform", "p4", "-func", "spin_lock", "-flips", "1"}},
		{"flip matrix g4", []string{"-platform", "g4", "-func", "spin_lock", "-flips", "1"}},
		{"boot trace", []string{"-platform", "g4", "-trace", "25"}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Errorf("run(%v) = %v", tt.args, err)
			}
		})
	}
}

func TestAsmErrors(t *testing.T) {
	if err := run([]string{"-platform", "p4", "-func", "nosuchfunc"}); err == nil {
		t.Error("unknown function accepted")
	}
	if err := run([]string{"-platform", "p4", "-func", "memcpy", "-flips", "100000"}); err == nil {
		t.Error("out-of-range instruction index accepted")
	}
}
