// Command kfi-asm is a developer tool for exploring the two simulated ISAs:
// it disassembles compiled kernel functions, shows what every single-bit
// flip of a chosen instruction decodes to (the paper's Figures 14/15
// analysis), and dumps the kernel symbol table.
//
// Examples:
//
//	kfi-asm -platform g4 -func sys_read            # disassemble
//	kfi-asm -platform g4 -func sys_read -flips 0   # flip matrix, instr 0
//	kfi-asm -platform p4 -symbols                  # symbol table
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"kfi"
	"kfi/internal/cisc"
	"kfi/internal/cli"
	"kfi/internal/machine"
	"kfi/internal/risc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-asm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kfi-asm", flag.ContinueOnError)
	var (
		platformFlag = fs.String("platform", "p4", "platform: p4 or g4")
		funcName     = fs.String("func", "", "kernel function to disassemble")
		flips        = fs.Int("flips", -1, "show the single-bit flip matrix for instruction N of -func")
		symbols      = fs.Bool("symbols", false, "dump the kernel symbol table")
		trace        = fs.Int("trace", 0, "trace the first N executed instructions from boot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	platform, err := cli.ParsePlatform(*platformFlag)
	if err != nil {
		return err
	}

	sys, err := kfi.BuildSystem(platform, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	im := sys.Sys.KernelImage

	if *trace > 0 {
		sys.Sys.Machine.Reboot()
		steps, res := sys.Sys.Machine.TraceRun(*trace)
		if err := machine.WriteTrace(os.Stdout, steps); err != nil {
			return err
		}
		fmt.Printf("... run state: %v\n", res.Outcome)
		return nil
	}

	if *symbols {
		names := make([]string, 0, len(im.Syms))
		for n := range im.Syms {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return im.Syms[names[i]] < im.Syms[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x  %s\n", im.Syms[n], n)
		}
		return nil
	}
	if *funcName == "" {
		return fmt.Errorf("need -func or -symbols")
	}
	fr, ok := im.FuncAt(im.Syms[*funcName])
	if !ok {
		return fmt.Errorf("unknown function %q", *funcName)
	}
	code := im.Code[fr.Start-im.CodeBase : fr.End-im.CodeBase]

	if *flips < 0 {
		if platform == kfi.G4 {
			words := make([]uint32, 0, len(code)/4)
			for i := 0; i+4 <= len(code); i += 4 {
				words = append(words, binary.BigEndian.Uint32(code[i:]))
			}
			for _, line := range risc.DisasmRange(words, fr.Start) {
				fmt.Println(line)
			}
			return nil
		}
		for _, line := range cisc.DisasmRange(code, fr.Start) {
			fmt.Println(line)
		}
		return nil
	}

	// Flip matrix for instruction N.
	if platform == kfi.G4 {
		off := *flips * 4
		if off+4 > len(code) {
			return fmt.Errorf("instruction %d out of range", *flips)
		}
		w := binary.BigEndian.Uint32(code[off:])
		orig, _ := risc.Decode(w)
		fmt.Printf("%08x: %08x  %s\n", fr.Start+uint32(off), w, orig)
		for bit := 0; bit < 32; bit++ {
			mw := w ^ 1<<bit
			in, err := risc.Decode(mw)
			desc := in.String()
			if err != nil {
				desc = "ILLEGAL"
			}
			fmt.Printf("  bit %2d → %08x  %s\n", bit, mw, desc)
		}
		return nil
	}
	// CISC: locate instruction N by walking the stream.
	off := 0
	for i := 0; i < *flips; i++ {
		in, err := cisc.Decode(code[off:])
		if err != nil {
			return fmt.Errorf("instruction %d not decodable", i)
		}
		off += int(in.Len)
	}
	orig, err := cisc.Decode(code[off:])
	if err != nil {
		return err
	}
	fmt.Printf("%08x: % x  %s\n", fr.Start+uint32(off), code[off:off+int(orig.Len)], orig)
	for byteIdx := 0; byteIdx < int(orig.Len); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), code[off:]...)
			mut[byteIdx] ^= 1 << bit
			in, err := cisc.Decode(mut)
			desc := in.String()
			extra := ""
			if err != nil {
				desc = "INVALID"
			} else if in.Len != orig.Len {
				extra = fmt.Sprintf("  (len %d→%d: stream re-synchronizes)", orig.Len, in.Len)
			}
			fmt.Printf("  byte %d bit %d → %s%s\n", byteIdx, bit, desc, extra)
		}
	}
	return nil
}
