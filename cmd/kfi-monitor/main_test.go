package main

import (
	"strings"
	"sync"
	"testing"
	"time"

	"kfi/internal/crashnet"
	"kfi/internal/isa"
)

func TestCollectPrintsAndSummarizes(t *testing.T) {
	coll, err := crashnet.NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	sender, err := crashnet.NewUDPSender(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	pkts := []crashnet.Packet{
		{Seq: 1, Platform: isa.CISC, Cause: isa.CauseNULLPointer, PC: 0x1234, Cycles: 999},
		{Seq: 2, Platform: isa.CISC, Cause: isa.CauseNULLPointer, PC: 0x1238, Cycles: 1500},
		{Seq: 3, Platform: isa.RISC, Cause: isa.CauseBadArea, PC: 0x2000, FaultAddr: 0x4D, Cycles: 77},
	}
	for _, p := range pkts {
		p := p
		if err := sender.Send(p); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := collect(coll, len(pkts), &out, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"NULL Pointer", "Bad Area", "3 crashes collected", "addr=0x0000004D"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The dominant cause leads the summary.
	if !strings.Contains(got, "66.7%") ||
		strings.Index(got, "NULL Pointer") > strings.Index(got, "66.7%") {
		t.Errorf("summary percentage missing or misordered:\n%s", got)
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-listen", "not-an-address"}, &out); err == nil {
		t.Error("bad listen address accepted")
	}
}

// syncBuffer is a goroutine-safe writer for driving run() concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunListensAndExitsAfterCount(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-count", "2"}, &out)
	}()

	// Wait for the banner with the bound address.
	var addr string
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "collecting crash packets on ") {
			line := strings.SplitN(s, "collecting crash packets on ", 2)[1]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("monitor never announced its address")
	}
	snd, err := crashnet.NewUDPSender(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	for seq := uint32(1); seq <= 2; seq++ {
		if err := snd.Send(crashnet.Packet{Seq: seq, Platform: isa.CISC,
			Cause: isa.CauseBadPaging, Cycles: 10}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("monitor did not exit after -count packets")
	}
	if got := out.String(); !strings.Contains(got, "2 crashes collected") {
		t.Errorf("summary missing:\n%s", got)
	}
}
