// Kfi-monitor is the control host's crash-data collector (the paper's
// "monitoring machine"): it listens for the UDP crash packets the guest
// kernel's embedded crash handler emits at the moment of failure and prints
// one line per crash, plus a running cause distribution on exit.
//
// Pair it with kfi-campaign's -crashnet flag:
//
//	kfi-monitor -listen 127.0.0.1:9377 &
//	kfi-campaign -platform g4 -campaign code -n 200 -crashnet 127.0.0.1:9377
//
// With -forward, each collected report is also forwarded to a ctlplane
// coordinator, so crashnet telemetry shows up in `kfi-ctl status` next to
// the campaigns that produced it:
//
//	kfi-monitor -listen 127.0.0.1:9377 -forward http://127.0.0.1:9380
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"

	"kfi/internal/cli"
	"kfi/internal/crashnet"
	"kfi/internal/ctlplane"
	"kfi/internal/isa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-monitor:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-monitor", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9377", "UDP address to collect crash packets on")
		count   = fs.Int("count", 0, "exit after this many packets (0 = run until killed)")
		forward = fs.String("forward", "", "forward collected reports to this ctlplane coordinator URL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, err := cli.ParseListenAddr(*listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	var fwd func(crashnet.Packet)
	if *forward != "" {
		client, err := ctlplane.NewClient(*forward)
		if err != nil {
			return fmt.Errorf("-forward: %w", err)
		}
		fwd = func(p crashnet.Packet) {
			rep := ctlplane.CrashReport{
				Source: "kfi-monitor", Platform: p.Platform.Short(),
				Cause: p.Cause.String(), Seq: p.Seq, PC: p.PC,
				FaultAddr: p.FaultAddr, SP: p.SP, Cycles: p.Cycles,
			}
			// Telemetry forwarding must never stall collection: a coordinator
			// outage costs the mirror, not the local record.
			if err := client.ReportCrash(rep); err != nil {
				fmt.Fprintf(os.Stderr, "kfi-monitor: forward: %v\n", err)
			}
		}
	}
	coll, err := crashnet.NewUDPCollector(addr)
	if err != nil {
		return err
	}
	defer coll.Close()
	fmt.Fprintf(w, "collecting crash packets on %s\n", coll.Addr())
	return collect(coll, *count, w, fwd)
}

// collect drains packets until count is reached (or forever when count is
// zero), printing each crash and a final summary. A collector outlives its
// inputs' noise: malformed datagrams and transient socket errors are skipped,
// and a closed socket ends collection gracefully with the summary — a
// campaign's worth of collected crashes must never be discarded over one bad
// read.
func collect(coll *crashnet.UDPCollector, count int, w io.Writer, forward func(crashnet.Packet)) error {
	causes := make(map[isa.CrashCause]int)
	received := 0
	summary := func() {
		type kv struct {
			c isa.CrashCause
			n int
		}
		var dist []kv
		for c, n := range causes {
			dist = append(dist, kv{c, n})
		}
		sort.Slice(dist, func(i, j int) bool {
			if dist[i].n != dist[j].n {
				return dist[i].n > dist[j].n
			}
			return dist[i].c < dist[j].c
		})
		fmt.Fprintf(w, "\n%d crashes collected:\n", received)
		for _, d := range dist {
			fmt.Fprintf(w, "  %-22s %5.1f%%  (%d)\n", d.c, 100*float64(d.n)/float64(received), d.n)
		}
	}
	for count == 0 || received < count {
		pkt, err := coll.RecvWait()
		if err != nil {
			if errors.Is(err, crashnet.ErrMalformed) || crashnet.Transient(err) {
				continue // noise or a momentary stall: keep collecting
			}
			summary()
			if errors.Is(err, net.ErrClosed) {
				return nil // socket closed under us: a normal shutdown
			}
			return err
		}
		received++
		causes[pkt.Cause]++
		fmt.Fprintf(w, "#%04d %-16s %-22s pc=0x%08X addr=0x%08X sp=0x%08X cycles=%d\n",
			pkt.Seq, pkt.Platform.Short(), pkt.Cause, pkt.PC, pkt.FaultAddr, pkt.SP, pkt.Cycles)
		if forward != nil {
			forward(pkt)
		}
	}
	summary()
	return nil
}
