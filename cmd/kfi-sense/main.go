// Kfi-sense runs the whole-target static error-sensitivity analyzer
// (internal/staticsense) over a built kernel image and reports, without
// executing a single injection, how each injection space — code, data,
// stack, and system registers — splits across the classification lattice,
// including the fraction a pruned campaign may skip as predicted inert.
//
//	kfi-sense -platform both
//	kfi-sense -platform g4 -target data
//	kfi-sense -platform p4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"kfi/internal/cc"
	"kfi/internal/cli"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
	"kfi/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-sense:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-sense", flag.ContinueOnError)
	var (
		platformFlag = fs.String("platform", "both", "target platform: p4, g4, or both")
		scale        = fs.Int("scale", 1, "benchmark workload scale (changes the compiled image)")
		target       = fs.String("target", "all", "restrict the sweep report to one target class: code, data, stack, sysreg, or all")
		asJSON       = fs.Bool("json", false, "emit the per-target, per-class tallies as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	platforms, err := cli.ParsePlatforms(*platformFlag)
	if err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", *scale)
	}
	switch *target {
	case "all", "code", "data", "stack", "sysreg":
	default:
		return fmt.Errorf("unknown -target %q (want code, data, stack, sysreg, or all)", *target)
	}

	var reports []*staticsense.Report
	for _, p := range platforms {
		uimg, err := cc.Compile(workload.Program(*scale), p, kernel.UserBases)
		if err != nil {
			return err
		}
		sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
		if err != nil {
			return err
		}
		an, err := staticsense.NewAnalyzer(staticsense.Config{
			Image:              sys.KernelImage,
			Prog:               sys.Prog,
			Proc:               sys.Src.Proc,
			KStackSize:         sys.KStackSize,
			HostReadGlobals:    kernel.HostReadGlobals(),
			HostReadTaskFields: kernel.HostReadTaskFields(),
		})
		if err != nil {
			return err
		}
		r, err := filterReport(an.Sweep(), *target)
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	for _, r := range reports {
		fmt.Fprint(w, r.Render())
	}
	return nil
}

// filterReport restricts a whole-target sweep report to one target class,
// rebuilding the aggregate tallies from the surviving section so totals and
// fractions stay self-consistent.
func filterReport(r *staticsense.Report, target string) (*staticsense.Report, error) {
	if target == "all" {
		return r, nil
	}
	for _, t := range r.Targets {
		if t.Target != target {
			continue
		}
		return &staticsense.Report{
			Platform: r.Platform,
			Sites:    t.Sites,
			ByClass:  t.ByClass,
			Inert:    t.Inert,
			Hardened: r.Hardened,
			Targets:  []*staticsense.TargetReport{t},
		}, nil
	}
	return nil, fmt.Errorf("the %v sweep has no %q target class", r.Platform, target)
}
