// Kfi-sense runs the bit-level static error-sensitivity analyzer
// (internal/staticsense) over a built kernel image and reports, without
// executing a single injection, how the code-injection space splits across
// the classification lattice — including the fraction a pruned campaign may
// skip as predicted inert.
//
//	kfi-sense -platform both
//	kfi-sense -platform g4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"kfi/internal/cc"
	"kfi/internal/cli"
	"kfi/internal/kernel"
	"kfi/internal/staticsense"
	"kfi/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-sense:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kfi-sense", flag.ContinueOnError)
	var (
		platformFlag = fs.String("platform", "both", "target platform: p4, g4, or both")
		scale        = fs.Int("scale", 1, "benchmark workload scale (changes the compiled image)")
		asJSON       = fs.Bool("json", false, "emit the per-class tallies as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	platforms, err := cli.ParsePlatforms(*platformFlag)
	if err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", *scale)
	}

	var reports []*staticsense.Report
	for _, p := range platforms {
		uimg, err := cc.Compile(workload.Program(*scale), p, kernel.UserBases)
		if err != nil {
			return err
		}
		sys, err := kernel.BuildSystem(p, uimg, workload.StandardProcs(), kernel.Options{})
		if err != nil {
			return err
		}
		an, err := staticsense.New(sys.KernelImage)
		if err != nil {
			return err
		}
		reports = append(reports, an.Sweep())
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	for _, r := range reports {
		fmt.Fprint(w, r.Render())
	}
	return nil
}
