package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSenseRendersBothPlatforms(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "both"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"P4", "G4", "inert-encoding", "predicted inert"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSenseJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "g4", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Sites   int            `json:"sites"`
		ByClass map[string]int `json:"by_class"`
		Inert   int            `json:"inert"`
	}
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].Sites == 0 || reports[0].Inert == 0 {
		t.Errorf("implausible report: %+v", reports)
	}
}

func TestSenseFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "vax"}, &out); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-scale", "0"}, &out); err == nil {
		t.Error("scale 0 accepted")
	}
}
