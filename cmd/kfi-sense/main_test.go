package main

import (
	"encoding/json"
	"strings"
	"testing"

	"kfi/internal/staticsense"
)

func TestSenseRendersBothPlatforms(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "both"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	wants := []string{"P4", "G4", "inert-encoding", "predicted inert",
		"target classes", "code:", "data:", "stack:", "sysreg:"}
	for _, want := range wants {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestSenseTargetFilter is the table-driven contract of the -target flag:
// a filtered report keeps exactly the requested target class, rebuilds its
// aggregates from the surviving section, and rejects unknown classes.
func TestSenseTargetFilter(t *testing.T) {
	cases := []struct {
		target    string
		wantClass string // a class name the filtered report must mention
		absent    string // a section heading that must be gone
	}{
		{"code", "inert-encoding", "data:"},
		{"data", "unreferenced", "code:"},
		{"stack", "unknown", "sysreg:"},
		{"sysreg", "masked-reg", "stack:"},
	}
	for _, tc := range cases {
		t.Run(tc.target, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"-platform", "p4", "-target", tc.target}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, tc.target+":") {
				t.Errorf("-target %s output missing its own section:\n%s", tc.target, got)
			}
			if !strings.Contains(got, tc.wantClass) {
				t.Errorf("-target %s output missing class %q:\n%s", tc.target, tc.wantClass, got)
			}
			if strings.Contains(got, tc.absent) {
				t.Errorf("-target %s output still renders %q:\n%s", tc.target, tc.absent, got)
			}
		})
	}

	var out strings.Builder
	if err := run([]string{"-target", "heap"}, &out); err == nil {
		t.Error("unknown -target accepted")
	}
}

func TestSenseJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "g4", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []*staticsense.Report
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].Sites == 0 || reports[0].Inert == 0 {
		t.Fatalf("implausible report: %+v", reports)
	}
	r := reports[0]
	if len(r.Targets) != 4 {
		t.Fatalf("whole-target JSON has %d target classes, want 4", len(r.Targets))
	}
	sites, inert := 0, 0
	for _, tr := range r.Targets {
		if tr.Sites == 0 || len(tr.ByClass) == 0 {
			t.Errorf("target %q has empty per-class counts: %+v", tr.Target, tr)
		}
		sum := 0
		for _, v := range tr.ByClass {
			sum += v
		}
		if sum != tr.Sites {
			t.Errorf("target %q class counts sum to %d, want %d", tr.Target, sum, tr.Sites)
		}
		sites += tr.Sites
		inert += tr.Inert
	}
	if sites != r.Sites || inert != r.Inert {
		t.Errorf("per-target sums %d/%d diverge from aggregates %d/%d", sites, inert, r.Sites, r.Inert)
	}
}

// TestSenseJSONFiltered: -json composes with -target, emitting the single
// filtered section with self-consistent aggregates.
func TestSenseJSONFiltered(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "p4", "-target", "sysreg", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []*staticsense.Report
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || len(reports[0].Targets) != 1 {
		t.Fatalf("filtered JSON shape wrong: %+v", reports)
	}
	r := reports[0]
	tr := r.Targets[0]
	if tr.Target != "sysreg" || r.Sites != tr.Sites || r.Inert != tr.Inert {
		t.Errorf("filtered aggregates not rebuilt from the sysreg section: %+v vs %+v", r, tr)
	}
	if tr.ByClass[staticsense.ClassMaskedReg.String()] == 0 {
		t.Errorf("sysreg section reports no masked-reg bits: %+v", tr.ByClass)
	}
}

func TestSenseFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-platform", "vax"}, &out); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-scale", "0"}, &out); err == nil {
		t.Error("scale 0 accepted")
	}
}
