// Kfi-lint runs the repository's own static checks (internal/lint): the
// exhaustive inject.Outcome switch rule and the no-wall-clock/no-global-RNG
// rule for packages on the deterministic replay path. Exit status 1 means
// findings, so it slots directly into scripts/lint.sh and CI.
//
//	kfi-lint            # lint the repository rooted at the working directory
//	kfi-lint /path/to/repo
package main

import (
	"fmt"
	"os"

	"kfi/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lint.Check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kfi-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kfi-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
