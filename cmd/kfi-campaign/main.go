// Command kfi-campaign runs the paper's error-injection campaigns against
// one or both simulated platforms and prints the Table 5/6-style statistics,
// crash-cause distributions, and cycles-to-crash histograms. Raw results can
// be logged as JSON lines for later analysis with kfi-report.
//
// Examples:
//
//	kfi-campaign -platform both -campaign all -n 300
//	kfi-campaign -platform p4 -campaign code -n 1790 -out p4-code.jsonl
//	kfi-campaign -paper-fraction 0.05    # 5% of the paper's 115k injections
//
// With -submit, the same flags describe campaigns handed to a ctlplane
// coordinator instead of run locally; worker machines started with
// `kfi-ctl work` execute them, and the derived per-(platform, campaign)
// seeds match a local run of the same flags exactly:
//
//	kfi-campaign -submit -coordinator 127.0.0.1:9380 -platform both -campaign all -n 300
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"kfi"
	"kfi/internal/cli"
	"kfi/internal/core"
	"kfi/internal/crashnet"
	"kfi/internal/ctlplane"
	"kfi/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kfi-campaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kfi-campaign", flag.ContinueOnError)
	var (
		platformFlag = fs.String("platform", "both", "target platform: p4, g4, or both")
		campaignFlag = fs.String("campaign", "all", "campaign: stack, sysreg, data, code, or all")
		n            = fs.Int("n", 0, "injections per campaign (0 = defaults)")
		paperFrac    = fs.Float64("paper-fraction", 0, "scale the paper's own campaign sizes instead of -n")
		seed         = fs.Int64("seed", 1, "target-generation seed")
		scale        = fs.Int("scale", 1, "benchmark workload scale")
		out          = fs.String("out", "", "append raw results as JSON lines to this file")
		figures      = fs.Bool("figures", true, "print crash-cause and latency figures")
		quiet        = fs.Bool("quiet", false, "suppress progress output")
		burst        = fs.Int("burst", 1, "bits flipped per injection (1 = the paper's single-bit model)")
		crashAddr    = fs.String("crashnet", "", "UDP address of a kfi-monitor collecting crash packets")
		execMode     = fs.String("exec", "snapshot", "execution mode: snapshot (fork-from-golden) or replay (reboot per injection)")
		engineFlag   = fs.String("engine", "", "execution engine: interp, predecode, or translate (default: the platform default)")
		verbose      = fs.Bool("v", false, "print execution-engine counters after each platform")
		sense        = fs.Bool("sense", false, "run the static error-sensitivity pre-pass and print the predicted-vs-observed confusion matrix")
		prune        = fs.Bool("prune", false, "implies -sense; skip injections predicted inert, synthesizing their outcomes from the golden run (snapshot mode only)")
		snapshotDir  = fs.String("snapshot-dir", "", "persist/reuse golden-prefix snapshots in this directory (snapshot mode only)")
		secCache     = fs.String("section-cache", "", "per-section outcome cache directory: re-runs replay unchanged sections' results and re-inject only changed ones (snapshot mode only)")
		journalDir   = fs.String("journal", "", "durably journal completed outcomes to this directory (one file per platform+campaign)")
		resume       = fs.Bool("resume", false, "resume from the journals in -journal, skipping already-completed injections")
		retries      = fs.Int("retries", 0, "supervised attempts per injection before quarantine (0 = default 3)")
		nodes        = fs.Int("nodes", 0, "parallel guest systems per platform (0 = one per host CPU)")
		cpuprofile   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		submit       = fs.Bool("submit", false, "submit the campaigns to a ctlplane coordinator instead of running locally")
		coordinator  = fs.String("coordinator", "", "coordinator base URL for -submit")
		harden       = fs.String("harden", "", "build the guest kernel with software fault-detection passes: dup, cfsig, dup+cfsig, or all")
		hardenStudy  = fs.Bool("harden-study", false, "run matched hardened/unhardened campaigns from the same injection plan and print the detection-coverage table (requires -harden)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	platforms, err := cli.ParsePlatforms(*platformFlag)
	if err != nil {
		return err
	}
	campaigns, err := cli.ParseCampaigns(*campaignFlag)
	if err != nil {
		return err
	}

	if *burst < 1 || *burst > 8 {
		return fmt.Errorf("-burst must be in [1, 8], got %d", *burst)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	hardenOpts, err := kfi.ParseHardenOptions(*harden)
	if err != nil {
		return err
	}
	engine, err := cli.ParseEngine(*engineFlag)
	if err != nil {
		return err
	}
	if *hardenStudy {
		if !hardenOpts.Enabled() {
			return fmt.Errorf("-harden-study requires -harden (e.g. -harden dup+cfsig)")
		}
		if *submit {
			return fmt.Errorf("-harden-study runs locally; submit the hardened and unhardened campaigns separately instead")
		}
		return runHardenStudy(platforms, campaigns, hardenOpts, *n, *seed, *scale, uint8(*burst), *quiet)
	}
	if *submit {
		if *coordinator == "" {
			return fmt.Errorf("-submit requires -coordinator")
		}
		if *n <= 0 {
			return fmt.Errorf("-submit requires an explicit -n (the coordinator does not scale paper sizes)")
		}
		client, err := ctlplane.NewClient(*coordinator)
		if err != nil {
			return fmt.Errorf("-coordinator: %w", err)
		}
		for _, p := range platforms {
			for _, c := range campaigns {
				spec := ctlplane.SpecFor(p, c, *n, *seed, uint8(*burst), *scale, *retries, hardenOpts, engine)
				st, err := client.Submit(spec)
				if err != nil {
					return fmt.Errorf("submitting %v %v: %w", p, c, err)
				}
				fmt.Printf("submitted %-28s %-16s %-18s n=%-6d state=%s\n",
					st.ID, p.Short(), c, *n, st.State)
			}
		}
		fmt.Printf("watch with: kfi-ctl status -coordinator %s\n", client.Base)
		return nil
	} else if *coordinator != "" {
		return fmt.Errorf("-coordinator requires -submit")
	}

	counts := map[kfi.Campaign]int{}
	if *n > 0 {
		for _, c := range campaigns {
			counts[c] = *n
		}
	}

	var logFile *os.File
	if *out != "" {
		logFile, err = os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer logFile.Close()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	if *nodes <= 0 {
		*nodes = runtime.NumCPU()
	}
	cfg := kfi.StudyConfig{
		Platforms:     platforms,
		Campaigns:     campaigns,
		Counts:        counts,
		PaperFraction: *paperFrac,
		Seed:          *seed,
		Build:         kfi.BuildOptions{Scale: *scale, Harden: hardenOpts},
		Nodes:         *nodes,
	}
	cfg.Burst = uint8(*burst)
	switch strings.ToLower(*execMode) {
	case "snapshot", "fork", "fork-from-golden":
		cfg.Exec = kfi.ExecOptions{SnapshotDir: *snapshotDir, SectionCache: *secCache}
	case "replay", "reboot":
		if *snapshotDir != "" {
			return fmt.Errorf("-snapshot-dir requires -exec snapshot")
		}
		if *secCache != "" {
			return fmt.Errorf("-section-cache requires -exec snapshot (cache keys fingerprint the traced golden run)")
		}
		if *prune {
			return fmt.Errorf("-prune requires -exec snapshot (pruned outcomes are synthesized from the traced golden run)")
		}
		cfg.Exec = kfi.ExecOptions{Replay: true}
	default:
		return fmt.Errorf("unknown -exec mode %q (want snapshot or replay)", *execMode)
	}
	cfg.Exec.Sense = *sense || *prune
	cfg.Exec.Prune = *prune
	cfg.Exec.Engine = engine
	if *resume && *journalDir == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	cfg.Exec.MaxAttempts = *retries
	cfg.JournalDir = *journalDir
	cfg.Resume = *resume
	if *crashAddr != "" {
		sender, err := crashnet.NewUDPSender(*crashAddr)
		if err != nil {
			return fmt.Errorf("crashnet: %w", err)
		}
		defer sender.Close()
		cfg.Build.CrashSender = sender
	}
	if !*quiet {
		cfg.Progress = func(p kfi.Platform, c kfi.Campaign, done, total int) {
			if done == total || done%50 == 0 {
				fmt.Fprintf(os.Stderr, "\r%-18s %-18s %6d/%d", p.Short(), c, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	study, err := kfi.RunStudy(cfg)
	if err != nil {
		return err
	}

	for _, p := range platforms {
		fmt.Println(study.Table(p))
		if q := quarantined(study, p, campaigns); q > 0 {
			fmt.Printf("Quarantined on %v (harness retry budget exhausted, excluded from the table): %d\n\n", p, q)
		}
		if *verbose {
			pr := study.PerPlatform[p]
			for _, c := range campaigns {
				if oc := pr.Outcomes[c]; oc != nil {
					fmt.Printf("%v %v — %s\n", p, c, stats.EngineLine(oc.Engine.String(), oc.EngineStats))
				}
			}
			fmt.Println()
		}
		if cfg.Exec.Sense {
			pr := study.PerPlatform[p]
			for _, c := range campaigns {
				if oc := pr.Outcomes[c]; oc != nil {
					if conf := stats.Confuse(oc.Results); conf.Annotated > 0 {
						fmt.Printf("%v %v — %s\n", p, c, conf.Render())
					}
				}
			}
		}
		if *figures {
			fmt.Println(study.CauseFigure(p, 0))
			for _, c := range campaigns {
				fmt.Println(study.CauseFigure(p, c))
			}
			fmt.Printf("Registers whose corruption manifested on %v: %s\n\n",
				p, strings.Join(study.SensitiveRegisters(p), ", "))
		}
		if logFile != nil {
			pr := study.PerPlatform[p]
			for _, c := range campaigns {
				if oc := pr.Outcomes[c]; oc != nil {
					if err := stats.WriteResults(logFile, p, c, oc.Results); err != nil {
						return err
					}
					if *verbose {
						// Engine-counter summary records ride along only on
						// request, so default logs stay byte-stable across
						// runs (counters vary with resume and farm layout).
						if err := stats.WriteEngineStats(logFile, p, c, oc.Engine, oc.EngineStats); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	if *figures {
		for _, c := range campaigns {
			fmt.Println(study.LatencyFigure(c))
		}
	}
	return nil
}

// runHardenStudy executes the matched hardened-vs-unhardened study: every
// requested campaign runs at single-bit and double-bit (adjacent-pair) burst
// widths against both builds, and each platform prints a detection-coverage
// table plus the hardening's static and dynamic overhead.
func runHardenStudy(platforms []kfi.Platform, campaigns []kfi.Campaign,
	opts kfi.HardenOptions, n int, seed int64, scale int, burst uint8, quiet bool) error {
	if n <= 0 {
		n = 100
	}
	wide := burst
	if wide <= 1 {
		wide = 2 // the double-bit adjacent-pair model
	}
	for _, p := range platforms {
		var specs []kfi.HardenSpec
		for _, c := range campaigns {
			s := kfi.HardenSpec{Campaign: c, N: n, Seed: core.SpecSeed(seed, p, c)}
			specs = append(specs, s)
			s.Burst = wide
			specs = append(specs, s)
		}
		var progress func(done, total int)
		if !quiet {
			progress = func(done, total int) {
				if done == total || done%50 == 0 {
					fmt.Fprintf(os.Stderr, "\r%-18s harden-study %6d/%d", p.Short(), done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		study, err := kfi.RunHardenStudy(p, scale, opts, specs, progress)
		if err != nil {
			return err
		}
		fmt.Printf("%v — Detection Coverage, Hardened (%s) vs Unhardened\n", p, opts)
		fmt.Println(stats.CoverageHeader())
		for _, row := range study.Rows {
			b := row.Spec.Burst
			if b == 0 {
				b = 1
			}
			label := func(variant string) string {
				return fmt.Sprintf("%v %db %s", row.Spec.Campaign, b, variant)
			}
			fmt.Println(kfi.Summarize(row.Hard).CoverageRow(label("hardened")))
			fmt.Println(kfi.Summarize(row.Plain).CoverageRow(label("unhardened")))
		}
		fmt.Printf("Overhead: code x%.2f (%d -> %d bytes), fault-free run x%.2f (%d -> %d cycles)\n\n",
			study.CodeOverhead(), study.CodeBytes, study.HardCodeBytes,
			study.CycleOverhead(), study.GoldenCycles, study.HardGoldenCycles)
	}
	return nil
}

// quarantined sums a platform's quarantine counts across campaigns.
func quarantined(study *kfi.StudyResult, p kfi.Platform, campaigns []kfi.Campaign) int {
	pr := study.PerPlatform[p]
	if pr == nil {
		return 0
	}
	q := 0
	for _, c := range campaigns {
		if oc := pr.Outcomes[c]; oc != nil {
			q += oc.Counts.Quarantined
		}
	}
	return q
}
