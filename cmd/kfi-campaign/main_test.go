package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kfi"
	"kfi/internal/cli"
	"kfi/internal/crashnet"
	"kfi/internal/stats"
)

func TestParseCampaigns(t *testing.T) {
	got, err := cli.ParseCampaigns("stack, code")
	if err != nil || len(got) != 2 || got[0] != kfi.Stack || got[1] != kfi.Code {
		t.Errorf("ParseCampaigns = %v, %v", got, err)
	}
	all, err := cli.ParseCampaigns("all")
	if err != nil || len(all) != 4 {
		t.Errorf("all = %v, %v", all, err)
	}
	if _, err := cli.ParseCampaigns("bogus"); err == nil {
		t.Error("bogus campaign accepted")
	}
}

func TestSubmitFlagValidation(t *testing.T) {
	if err := run([]string{"-submit", "-platform", "p4", "-campaign", "code", "-n", "5"}); err == nil {
		t.Error("-submit without -coordinator accepted")
	}
	if err := run([]string{"-submit", "-coordinator", "127.0.0.1:9380",
		"-platform", "p4", "-campaign", "code"}); err == nil {
		t.Error("-submit without -n accepted")
	}
	if err := run([]string{"-submit", "-coordinator", "ftp://x",
		"-platform", "p4", "-campaign", "code", "-n", "5"}); err == nil {
		t.Error("non-http coordinator URL accepted")
	}
	if err := run([]string{"-coordinator", "127.0.0.1:9380",
		"-platform", "p4", "-campaign", "code", "-n", "5"}); err == nil {
		t.Error("-coordinator without -submit accepted")
	}
}

func TestBurstFlagValidation(t *testing.T) {
	if err := run([]string{"-burst", "0", "-platform", "p4", "-campaign", "code", "-n", "1", "-quiet"}); err == nil {
		t.Error("burst 0 accepted")
	}
	if err := run([]string{"-burst", "9", "-platform", "p4", "-campaign", "code", "-n", "1", "-quiet"}); err == nil {
		t.Error("burst 9 accepted")
	}
}

func TestCrashnetStreamsToCollector(t *testing.T) {
	coll, err := crashnet.NewUDPCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	err = run([]string{"-platform", "p4", "-campaign", "code", "-n", "25",
		"-seed", "42", "-quiet", "-figures=false", "-crashnet", coll.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	// A 25-injection code campaign reliably produces several crashes; each
	// must have arrived as a well-formed packet.
	got := 0
	for {
		pkt, ok := coll.Recv()
		if !ok {
			break
		}
		got++
		if pkt.Cause == 0 {
			t.Error("crash packet with no cause")
		}
	}
	if got == 0 {
		t.Error("no crash packets reached the collector")
	}
}

func TestCrashnetRejectsBadAddress(t *testing.T) {
	if err := run([]string{"-platform", "p4", "-campaign", "code", "-n", "1",
		"-quiet", "-crashnet", "::bad::"}); err == nil {
		t.Error("bad crashnet address accepted")
	}
}

func TestCampaignOutFileAndFigures(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "results.jsonl")
	err := run([]string{"-platform", "p4", "-campaign", "stack", "-n", "10",
		"-seed", "3", "-quiet", "-figures", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := stats.ReadResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Errorf("JSONL holds %d records, want 10", len(recs))
	}
	// The log must round-trip through kfi-report's grouping.
	groups := stats.GroupRecords(recs)
	if len(groups["p4/Stack"]) != 10 {
		t.Errorf("grouping = %v", len(groups["p4/Stack"]))
	}
}

func TestCampaignPaperFraction(t *testing.T) {
	// -paper-fraction scales the paper's own campaign sizes; at 0.0002 the
	// stack campaign rounds to its minimum of 1 injection.
	err := run([]string{"-platform", "g4", "-campaign", "stack",
		"-paper-fraction", "0.0002", "-quiet", "-figures=false"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCampaignRejectsBadSelectors(t *testing.T) {
	if err := run([]string{"-platform", "vax"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-platform", "p4", "-campaign", "paging"}); err == nil {
		t.Error("unknown campaign accepted")
	}
	if err := run([]string{"-platform", "p4", "-campaign", "code", "-n", "1",
		"-quiet", "-out", "/nonexistent-dir/x.jsonl"}); err == nil {
		t.Error("unwritable -out accepted")
	}
}

func TestResumeFlagRequiresJournal(t *testing.T) {
	if err := run([]string{"-platform", "p4", "-campaign", "stack", "-n", "1",
		"-quiet", "-resume"}); err == nil {
		t.Error("-resume without -journal accepted")
	}
	if err := run([]string{"-platform", "p4", "-campaign", "stack", "-n", "1",
		"-quiet", "-retries", "-1"}); err == nil {
		t.Error("negative -retries accepted")
	}
}

// TestJournalResumeCLI runs a journaled campaign to completion, then reruns
// the same command with -resume: every injection is served from the journal
// and the JSONL output is byte-identical.
func TestJournalResumeCLI(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	out1 := filepath.Join(dir, "first.jsonl")
	out2 := filepath.Join(dir, "resumed.jsonl")
	base := []string{"-platform", "g4", "-campaign", "stack", "-n", "8",
		"-seed", "4", "-quiet", "-figures=false", "-journal", jdir}
	if err := run(append(base, "-out", out1)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-resume", "-out", out2)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed CLI output differs:\n%s\nvs\n%s", a, b)
	}
}
