package kfi_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each Benchmark* maps to one paper artifact:
//
//	BenchmarkTable5_P4Campaigns     — Table 5 (P4 activation/failure stats)
//	BenchmarkTable6_G4Campaigns     — Table 6 (G4 activation/failure stats)
//	BenchmarkFigure4_P4CrashCauses  — Fig. 4 (overall P4 crash causes)
//	BenchmarkFigure5_G4CrashCauses  — Fig. 5 (overall G4 crash causes)
//	BenchmarkFigure6_StackCrashCauses   — Fig. 6 (stack-injection causes)
//	BenchmarkFigure10_SysRegCrashCauses — Fig. 10 (register-injection causes)
//	BenchmarkFigure11_CodeCrashCauses   — Fig. 11 (code-injection causes)
//	BenchmarkFigure12_DataCrashCauses   — Fig. 12 (data-injection causes)
//	BenchmarkFigure16{A,B,C,D}_*Latency — Fig. 16 (cycles-to-crash)
//
// One benchmark iteration is one complete injection run (reboot, inject,
// run-to-outcome). Larger -benchtime values sharpen every distribution; the
// tables are printed through b.Log at the end of each benchmark.
//
// Ablation benches isolate the design choices DESIGN.md calls out:
// encoding density, stack-overflow wrapper, spinlock debug checks, data
// layout, register-file pressure, the unclaimed-bus window, the mid-run
// trigger methodology, and the multi-bit-burst extension of the error
// model. BenchmarkPropagation quantifies the Figure 7 phenomenon.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"kfi"
	"kfi/internal/cisc"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/mem"
	"kfi/internal/platform"
	"kfi/internal/risc"
	"kfi/internal/snapshot"
	"kfi/internal/staticsense"
	"kfi/internal/stats"
)

// Systems are expensive to build; share them across benchmarks.
var (
	benchOnce sync.Once
	benchSys  map[kfi.Platform]*kfi.System
	benchErr  error
)

func benchSystem(b *testing.B, p kfi.Platform) *kfi.System {
	b.Helper()
	benchOnce.Do(func() {
		benchSys = make(map[kfi.Platform]*kfi.System, 2)
		for _, plat := range kfi.Platforms {
			sys, err := kfi.BuildSystem(plat, kfi.BuildOptions{})
			if err != nil {
				benchErr = err
				return
			}
			benchSys[plat] = sys
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys[p]
}

// campaignMix pre-generates a repeating target mix with the paper's
// per-campaign proportions for one platform's Table 5/6.
func campaignMix(b *testing.B, sys *kfi.System, seed int64) ([]kfi.Target, []kfi.Campaign) {
	b.Helper()
	// Proportions from the paper's tables, scaled to a 64-target cycle:
	// P4 61799 total → stack 10.5, sysreg 4, data 47.6, code 1.9 of 64.
	mix := []struct {
		camp kfi.Campaign
		n    int
	}{
		{kfi.Stack, 10},
		{kfi.SysRegs, 4},
		{kfi.Data, 46},
		{kfi.Code, 4},
	}
	var targets []kfi.Target
	var camps []kfi.Campaign
	for _, m := range mix {
		ts, err := kfi.NewTargets(sys, m.camp, m.n*8, seed+int64(m.camp))
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, ts...)
		for range ts {
			camps = append(camps, m.camp)
		}
	}
	return targets, camps
}

func benchTable(b *testing.B, p kfi.Platform) {
	sys := benchSystem(b, p)
	targets, camps := campaignMix(b, sys, 100+int64(p))
	perCamp := make(map[kfi.Campaign][]kfi.Result)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := targets[i%len(targets)]
		perCamp[camps[i%len(targets)]] = append(perCamp[camps[i%len(targets)]], kfi.InjectOne(sys, t))
	}
	b.StopTimer()
	var out string
	out += fmt.Sprintf("\n%v — Statistics on Error Activation and Failure Distribution (N=%d)\n", p, b.N)
	for _, c := range kfi.AllCampaigns {
		if rs := perCamp[c]; len(rs) > 0 {
			counts := kfi.Summarize(rs)
			out += counts.TableRow(c.String()) + "\n"
			if c == kfi.Stack {
				base := counts.ActivatedBase()
				if base > 0 {
					b.ReportMetric(100*float64(counts.Manifested())/float64(base), "stack-manifest-%")
				}
			}
		}
	}
	b.Log(out)
}

// BenchmarkTable5_P4Campaigns regenerates Table 5.
func BenchmarkTable5_P4Campaigns(b *testing.B) { benchTable(b, kfi.P4) }

// BenchmarkTable6_G4Campaigns regenerates Table 6.
func BenchmarkTable6_G4Campaigns(b *testing.B) { benchTable(b, kfi.G4) }

// benchCauses runs one campaign on one platform and prints its crash-cause
// distribution.
func benchCauses(b *testing.B, p kfi.Platform, camp kfi.Campaign, title string) kfi.CauseDist {
	sys := benchSystem(b, p)
	targets, err := kfi.NewTargets(sys, camp, 512, 200+int64(p)+int64(camp))
	if err != nil {
		b.Fatal(err)
	}
	var results []kfi.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
	}
	b.StopTimer()
	d := kfi.CrashCauses(results)
	b.ReportMetric(float64(d.Total), "crashes")
	b.Logf("\n%s (N=%d)\n%s", title, b.N, d.Render(p))
	return d
}

// benchCausesAll merges every campaign (Figures 4/5).
func benchCausesAll(b *testing.B, p kfi.Platform, title string) {
	sys := benchSystem(b, p)
	targets, _ := campaignMix(b, sys, 300+int64(p))
	var results []kfi.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
	}
	b.StopTimer()
	d := kfi.CrashCauses(results)
	b.ReportMetric(d.InvalidMemoryPct(p), "invalid-mem-%")
	b.Logf("\n%s (N=%d)\n%s", title, b.N, d.Render(p))
}

// BenchmarkFigure4_P4CrashCauses regenerates Figure 4.
func BenchmarkFigure4_P4CrashCauses(b *testing.B) {
	benchCausesAll(b, kfi.P4, "Overall Distribution of Crash Causes (Known Crash, P4)")
}

// BenchmarkFigure5_G4CrashCauses regenerates Figure 5.
func BenchmarkFigure5_G4CrashCauses(b *testing.B) {
	benchCausesAll(b, kfi.G4, "Overall Distribution of Crash Causes (Known Crash, G4)")
}

// BenchmarkFigure6_StackCrashCauses regenerates Figure 6 (run on both
// platforms via sub-benchmarks).
func BenchmarkFigure6_StackCrashCauses(b *testing.B) {
	b.Run("p4", func(b *testing.B) {
		benchCauses(b, kfi.P4, kfi.Stack, "Crash Causes for Kernel Stack Injection (P4)")
	})
	b.Run("g4", func(b *testing.B) {
		d := benchCauses(b, kfi.G4, kfi.Stack, "Crash Causes for Kernel Stack Injection (G4)")
		so := d.Counts[kfi.CauseStackOverflow]
		if d.Total > 0 {
			b.ReportMetric(100*float64(so)/float64(d.Total), "stack-overflow-%")
		}
	})
}

// BenchmarkFigure10_SysRegCrashCauses regenerates Figure 10.
func BenchmarkFigure10_SysRegCrashCauses(b *testing.B) {
	b.Run("p4", func(b *testing.B) {
		benchCauses(b, kfi.P4, kfi.SysRegs, "Crash Causes for System Register Injection (P4)")
	})
	b.Run("g4", func(b *testing.B) {
		benchCauses(b, kfi.G4, kfi.SysRegs, "Crash Causes for System Register Injection (G4)")
	})
}

// BenchmarkFigure11_CodeCrashCauses regenerates Figure 11.
func BenchmarkFigure11_CodeCrashCauses(b *testing.B) {
	b.Run("p4", func(b *testing.B) {
		benchCauses(b, kfi.P4, kfi.Code, "Crash Causes for Code Injection (P4)")
	})
	b.Run("g4", func(b *testing.B) {
		benchCauses(b, kfi.G4, kfi.Code, "Crash Causes for Code Injection (G4)")
	})
}

// BenchmarkFigure12_DataCrashCauses regenerates Figure 12.
func BenchmarkFigure12_DataCrashCauses(b *testing.B) {
	b.Run("p4", func(b *testing.B) {
		benchCauses(b, kfi.P4, kfi.Data, "Crash Causes for Kernel Data Injection (P4)")
	})
	b.Run("g4", func(b *testing.B) {
		benchCauses(b, kfi.G4, kfi.Data, "Crash Causes for Kernel Data Injection (G4)")
	})
}

// benchLatency runs one campaign on both platforms and prints the Figure 16
// panel.
func benchLatency(b *testing.B, camp kfi.Campaign, panel string) {
	var hists [2]kfi.LatencyHist
	for pi, p := range kfi.Platforms {
		pi, p := pi, p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			targets, err := kfi.NewTargets(sys, camp, 512, 400+int64(p)+int64(camp))
			if err != nil {
				b.Fatal(err)
			}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
			}
			b.StopTimer()
			hists[pi] = kfi.Latencies(results)
			b.ReportMetric(hists[pi].CumulativePct(1), "<=10k-%")
		})
	}
	var out string
	out += fmt.Sprintf("\nFigure 16(%s): Cycles-to-Crash, %v Injection\n", panel, camp)
	out += fmt.Sprintf("  %-9s %10s %10s\n", "bucket", "P4-class", "G4-class")
	labels := []string{"<3k", "3k-10k", "10k-100k", "100k-1M", "1M-10M", "10M-100M", "100M-1G", ">1G"}
	for i, label := range labels {
		out += fmt.Sprintf("  %-9s %9.1f%% %9.1f%%\n", label, hists[0].Pct(i), hists[1].Pct(i))
	}
	out += fmt.Sprintf("  %-9s %10d %10d\n", "crashes", hists[0].Total, hists[1].Total)
	b.Log(out)
}

// BenchmarkFigure16A_StackLatency regenerates Figure 16(A).
func BenchmarkFigure16A_StackLatency(b *testing.B) { benchLatency(b, kfi.Stack, "A") }

// BenchmarkFigure16B_SysRegLatency regenerates Figure 16(B).
func BenchmarkFigure16B_SysRegLatency(b *testing.B) { benchLatency(b, kfi.SysRegs, "B") }

// BenchmarkFigure16C_CodeLatency regenerates Figure 16(C).
func BenchmarkFigure16C_CodeLatency(b *testing.B) { benchLatency(b, kfi.Code, "C") }

// BenchmarkFigure16D_DataLatency regenerates Figure 16(D).
func BenchmarkFigure16D_DataLatency(b *testing.B) { benchLatency(b, kfi.Data, "D") }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationEncodingDensity measures, per platform, the fraction of
// single-bit instruction flips that still decode to a valid instruction —
// the encoding-density mechanism behind the P4's resynchronization behavior.
func BenchmarkAblationEncodingDensity(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			im := sys.Sys.KernelImage
			code := im.Code
			valid, total := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * 2654435761) % (len(code) - 8)
				if p == kfi.G4 {
					off &^= 3
					w := uint32(code[off])<<24 | uint32(code[off+1])<<16 |
						uint32(code[off+2])<<8 | uint32(code[off+3])
					for bit := 0; bit < 32; bit++ {
						total++
						if _, err := risc.Decode(w ^ 1<<bit); err == nil {
							valid++
						}
					}
					continue
				}
				for bit := 0; bit < 8; bit++ {
					total++
					mut := append([]byte(nil), code[off:off+8]...)
					mut[0] ^= 1 << bit
					if _, err := cisc.Decode(mut); err == nil {
						valid++
					}
				}
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(100*float64(valid)/float64(total), "flips-still-decode-%")
			}
		})
	}
}

// BenchmarkAblationStackWrapper compares G4 stack-injection crash causes
// with and without the kernel's exception-entry stack check: without it, the
// explicit Stack Overflow category disappears and the same corruptions
// surface as other exceptions — the P4's behavior (paper §5.1).
func BenchmarkAblationStackWrapper(b *testing.B) {
	for _, wrapper := range []bool{true, false} {
		wrapper := wrapper
		name := "with-wrapper"
		if !wrapper {
			name = "without-wrapper"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := kfi.BuildSystem(kfi.G4, kfi.BuildOptions{NoStackWrapper: !wrapper})
			if err != nil {
				b.Fatal(err)
			}
			targets, err := kfi.NewTargets(sys, kfi.Stack, 512, 777)
			if err != nil {
				b.Fatal(err)
			}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
			}
			b.StopTimer()
			d := kfi.CrashCauses(results)
			so := 0
			for cause, n := range d.Counts {
				if cause.String() == "Stack Overflow" {
					so += n
				}
			}
			if d.Total > 0 {
				b.ReportMetric(100*float64(so)/float64(d.Total), "stack-overflow-%")
			}
			b.Logf("\nG4 stack crashes %s (N=%d):\n%s", name, b.N, d.Render(kfi.G4))
		})
	}
}

// BenchmarkAblationSpinlockDebug compares data injections into the spinlock
// region with and without SPINLOCK_DEBUG: with the checks, corrupted magic
// words are caught quickly as Invalid Instruction (Figure 13); without them,
// the corruption passes silently or hangs.
func BenchmarkAblationSpinlockDebug(b *testing.B) {
	for _, debug := range []bool{true, false} {
		debug := debug
		name := "with-debug"
		if !debug {
			name = "without-debug"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{
				Kernel: kfi.KernelProgOptions{NoSpinlockDebug: !debug},
			})
			if err != nil {
				b.Fatal(err)
			}
			// Aim every injection at the five locks' magic words.
			lockSyms := []string{"kernel_flag", "page_lock", "buf_lock", "net_lock", "journal_lock"}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sym := lockSyms[i%len(lockSyms)]
				t := kfi.Target{
					Campaign: kfi.Data,
					Addr:     sys.Sys.KernelImage.Sym(sym) + uint32(i%4),
					Bit:      uint(i % 8),
				}
				results = append(results, kfi.InjectOne(sys, t))
			}
			b.StopTimer()
			c := kfi.Summarize(results)
			d := kfi.CrashCauses(results)
			ii := 0
			for cause, n := range d.Counts {
				if cause.String() == "Invalid Instruction" {
					ii += n
				}
			}
			b.ReportMetric(float64(ii), "bug-detections")
			b.ReportMetric(float64(c.HangUnknown), "hangs")
			b.Logf("\nspinlock-magic injections %s (N=%d): %+v", name, b.N, c)
		})
	}
}

// BenchmarkAblationDataLayout measures the data-sensitivity difference the
// layouts create: the fraction of data-injection activations that manifest,
// per platform (packed CISC vs word-padded RISC).
func BenchmarkAblationDataLayout(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			// Target the hot structure area (buffer heads + locks + stats),
			// where activation is likely, to compare manifestation rates.
			im := sys.Sys.KernelImage
			base := im.Sym("buffer_heads")
			end := im.Sym("sys_call_table")
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := base + uint32((i*2654435761)%int(end-base))
				t := kfi.Target{Campaign: kfi.Data, Addr: addr, Bit: uint(i % 8)}
				results = append(results, kfi.InjectOne(sys, t))
			}
			b.StopTimer()
			c := kfi.Summarize(results)
			if c.Activated > 0 {
				b.ReportMetric(100*float64(c.Manifested())/float64(c.Activated), "manifest-of-activated-%")
			}
			b.Logf("\nhot-data injections on %v (N=%d): %+v", p, b.N, c)
		})
	}
}

// BenchmarkAblationRegisterPressure measures the DYNAMIC stack traffic the
// register files create: the fraction of executed kernel instructions that
// touch the stack (argument pushes, spills, frame loads). The 4-register
// CISC target lives on its stack; the 16-allocatable-register RISC target
// keeps values register-resident — the mechanism behind the paper's stack
// sensitivity and code-latency contrasts.
func BenchmarkAblationRegisterPressure(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			im := sys.Sys.KernelImage
			// Precompute which instruction addresses are stack-touching.
			stackPC := make(map[uint32]bool)
			if p == kfi.G4 {
				for off := 0; off+4 <= len(im.Code); off += 4 {
					w := uint32(im.Code[off])<<24 | uint32(im.Code[off+1])<<16 |
						uint32(im.Code[off+2])<<8 | uint32(im.Code[off+3])
					in, err := risc.Decode(w)
					if err != nil {
						continue
					}
					switch in.Op {
					case risc.OpSTW, risc.OpSTWU, risc.OpLWZ:
						if in.RA == risc.SP || in.RA == 31 {
							stackPC[im.CodeBase+uint32(off)] = true
						}
					}
				}
			} else {
				for off := 0; off < len(im.Code); {
					in, err := cisc.Decode(im.Code[off:])
					if err != nil {
						off++
						continue
					}
					switch in.Op {
					case cisc.OpPUSH, cisc.OpPOP, cisc.OpPUSHI, cisc.OpLEAVE,
						cisc.OpCALL, cisc.OpCALLR, cisc.OpRET:
						stackPC[im.CodeBase+uint32(off)] = true
					case cisc.OpLD32, cisc.OpST32:
						if in.R2 == cisc.EBP || in.R2 == cisc.ESP {
							stackPC[im.CodeBase+uint32(off)] = true
						}
					}
					off += int(in.Len)
				}
			}
			var stackOps, total float64
			m := sys.Sys.Machine
			m.Reboot()
			m.Core().SetTrace(func(pc uint32, cost uint8) {
				total++
				if stackPC[pc] {
					stackOps++
				}
			})
			b.ResetTimer()
			m.PauseAt = uint64(b.N)
			m.Run()
			b.StopTimer()
			m.Core().SetTrace(nil)
			if total > 0 {
				b.ReportMetric(100*stackOps/total, "dyn-stack-traffic-%")
			}
		})
	}
}

// --- Substrate performance -----------------------------------------------

// BenchmarkEmulator measures raw interpreter throughput per platform.
func BenchmarkEmulator(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			m := sys.Sys.Machine
			m.Reboot()
			clk := m.Core().Clock()
			b.ResetTimer()
			start := clk.Cycles()
			m.PauseAt = uint64(b.N) + 1
			m.Run()
			b.StopTimer()
			b.ReportMetric(float64(clk.Cycles()-start)/float64(b.N), "cycles/op")
		})
	}
}

// BenchmarkBenchmarkRun measures complete fault-free benchmark runs
// (reboot + full workload).
func BenchmarkBenchmarkRun(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := sys.Sys.Run()
				if res.Checksum != sys.Golden {
					b.Fatalf("run %d diverged", i)
				}
			}
		})
	}
}

// BenchmarkBuildSystem measures a full system build (compile kernel +
// workload for both ISAs, boot, seal, profile).
func BenchmarkBuildSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagation quantifies the Figure 7 phenomenon: how often a code
// error escapes the corrupted function (and its subsystem) before crashing.
// The paper's key P4 risk is exactly this undetected cross-subsystem travel.
func BenchmarkPropagation(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			targets, err := kfi.NewTargets(sys, kfi.Code, 512, 600+int64(p))
			if err != nil {
				b.Fatal(err)
			}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
			}
			b.StopTimer()
			prop := kfi.Propagate(results)
			if prop.Crashes > 0 {
				b.ReportMetric(prop.CrossPct(), "cross-subsystem-%")
			}
			b.Logf("\n%v %s", p, prop.Render())
		})
	}
}

// BenchmarkAblationBurstWidth extends the paper's single-bit error model to
// multi-bit bursts (2 and 4 adjacent bits) on the code campaign. The
// expectation from the Figure 11 argument: wider bursts push the dense CISC
// encoding toward even more valid-but-wrong decodes (memory faults), while
// the sparse RISC encoding converts them into Illegal Instruction even more
// often — the architectural gap widens with burst width.
func BenchmarkAblationBurstWidth(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			for _, burst := range []uint8{1, 2, 4} {
				burst := burst
				b.Run(fmt.Sprintf("burst-%d", burst), func(b *testing.B) {
					targets, err := kfi.NewTargets(sys, kfi.Code, 256, 7100+int64(burst))
					if err != nil {
						b.Fatal(err)
					}
					var results []kfi.Result
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						t := targets[i%len(targets)]
						t.Burst = burst
						results = append(results, kfi.InjectOne(sys, t))
					}
					b.StopTimer()
					c := kfi.Summarize(results)
					d := kfi.CrashCauses(results)
					var illegal, memory int
					for cause, n := range d.Counts {
						switch cause.String() {
						case "Invalid Instruction", "Illegal Instruction":
							illegal += n
						case "NULL Pointer", "Bad Paging", "Bad Area":
							memory += n
						}
					}
					if d.Total > 0 {
						b.ReportMetric(100*float64(illegal)/float64(d.Total), "illegal-%")
						b.ReportMetric(100*float64(memory)/float64(d.Total), "invalid-mem-%")
					}
					b.ReportMetric(100*float64(c.Crash+c.HangUnknown)/float64(c.Injected), "manifest-%")
					b.Logf("\n%v burst=%d (N=%d): %+v", p, burst, b.N, c)
				})
			}
		})
	}
}

// BenchmarkAblationBusWindow varies how much of the beyond-RAM address space
// is an unclaimed processor-local bus region on the G4. The paper's G4 shows
// Machine Check as a small share (1.4%) of crashes; that is only reproducible
// if most wild kernel pointers fault as Bad Area (mapped-bus / page-fault
// path) rather than hanging the bus — the narrow-window calibration DESIGN.md
// §8 records.
func BenchmarkAblationBusWindow(b *testing.B) {
	for _, wide := range []bool{false, true} {
		wide := wide
		name := "narrow-window"
		if wide {
			name = "whole-bus-unclaimed"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := kfi.BuildSystem(kfi.G4, kfi.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if wide {
				// Every beyond-RAM access hangs the bus.
				sys.Sys.Machine.Mem.SetBusWindow(16<<20, 0xFFFFFFF0)
			}
			targets, err := kfi.NewTargets(sys, kfi.Code, 256, 4242)
			if err != nil {
				b.Fatal(err)
			}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results = append(results, kfi.InjectOne(sys, targets[i%len(targets)]))
			}
			b.StopTimer()
			d := kfi.CrashCauses(results)
			var mc int
			for cause, n := range d.Counts {
				if cause.String() == "Machine Check" {
					mc += n
				}
			}
			if d.Total > 0 {
				b.ReportMetric(100*float64(mc)/float64(d.Total), "machine-check-%")
			}
			b.Logf("\nG4 %s (N=%d): crashes=%d machine-checks=%d", name, b.N, d.Total, mc)
		})
	}
}

// BenchmarkAblationMidRunTrigger contrasts the paper's methodology — stack
// errors injected at a random mid-run moment, resolved against the live
// stack extent — with naive boot-time injection. At boot every kernel stack
// is empty, so boot-time flips land in dead memory and are almost never
// activated; the mid-run trigger is what makes the paper's ~30-40% stack
// activation (Tables 5/6) reachable at all.
func BenchmarkAblationMidRunTrigger(b *testing.B) {
	for _, midRun := range []bool{true, false} {
		midRun := midRun
		name := "mid-run"
		if !midRun {
			name = "boot-time"
		}
		b.Run(name, func(b *testing.B) {
			sys := benchSystem(b, kfi.P4)
			targets, err := kfi.NewTargets(sys, kfi.Stack, 256, 1616)
			if err != nil {
				b.Fatal(err)
			}
			var results []kfi.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := targets[i%len(targets)]
				if !midRun {
					t.Delay = 0
				}
				results = append(results, kfi.InjectOne(sys, t))
			}
			b.StopTimer()
			c := kfi.Summarize(results)
			b.ReportMetric(100*float64(c.Activated)/float64(c.Injected), "activation-%")
			b.Logf("\nP4 stack %s (N=%d): %+v", name, b.N, c)
		})
	}
}

// --- Snapshot subsystem (fork-from-golden) -------------------------------

// BenchmarkSnapshotSpeedup measures what the snapshot subsystem replaces on
// a fixed-seed code-campaign batch: bringing the guest to each injection's
// trigger point. Replay-from-boot pays reboot + golden-prefix execution per
// target; restore-from-snapshot pays one traced golden pass for the whole
// batch plus an O(dirty pages) restore per target (the fork-from-golden
// chain internal/campaign runs). Both full campaign modes are also executed
// and timed, and their outcome tables must match byte-for-byte — the modes
// are bit-equivalent, only the cost differs. The end-to-end campaign gap is
// smaller than the establishment gap because both modes still execute every
// injection's post-injection tail (Amdahl); both numbers go to
// BENCH_snapshot.json.
func BenchmarkSnapshotSpeedup(b *testing.B) {
	type row struct {
		ReplayNS           int64   `json:"replay_ns"`
		SnapshotNS         int64   `json:"snapshot_ns"`
		Speedup            float64 `json:"speedup"`
		CampaignReplayNS   int64   `json:"campaign_replay_ns"`
		CampaignSnapshotNS int64   `json:"campaign_snapshot_ns"`
		CampaignSpeedup    float64 `json:"campaign_speedup"`
		Injections         int     `json:"injections"`
		Triggers           int     `json:"triggers"`
	}
	rows := map[string]row{}
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			const n = 150
			seed := int64(910) + int64(p)

			// Full campaigns in both modes (untimed by the framework, but
			// measured): the correctness half of the claim.
			t0 := time.Now()
			rep, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil, kfi.ExecOptions{Replay: true})
			if err != nil {
				b.Fatal(err)
			}
			campReplay := time.Since(t0)
			t0 = time.Now()
			snapC, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil, kfi.ExecOptions{})
			if err != nil {
				b.Fatal(err)
			}
			campSnapshot := time.Since(t0)
			repTable, snapTable := rep.Counts.TableRow("code"), snapC.Counts.TableRow("code")
			if repTable != snapTable {
				b.Fatalf("outcome tables diverge between modes:\n  replay:   %s\n  snapshot: %s", repTable, snapTable)
			}

			// Recover the batch's trigger cycles (first execution of each
			// target address) from one traced golden run.
			targets, err := kfi.NewTargets(sys, kfi.Code, n, seed)
			if err != nil {
				b.Fatal(err)
			}
			m := sys.Sys.Machine
			m.Reboot()
			clk := m.Core().Clock()
			firstHit := map[uint32]uint64{}
			m.Core().SetTrace(func(pc uint32, cost uint8) {
				if _, ok := firstHit[pc]; !ok {
					firstHit[pc] = clk.Cycles() - uint64(cost)
				}
			})
			m.Run()
			m.Core().SetTrace(nil)
			var triggers []uint64
			for _, t := range targets {
				if cyc, ok := firstHit[t.Addr]; ok && cyc > 0 {
					triggers = append(triggers, cyc)
				}
			}
			sort.Slice(triggers, func(i, j int) bool { return triggers[i] < triggers[j] })
			if len(triggers) == 0 {
				b.Fatal("no activated targets in the batch")
			}

			var replayTot, snapTot time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Replay-from-boot: reboot and execute the golden prefix for
				// every target.
				t0 := time.Now()
				for _, trig := range triggers {
					m.Reboot()
					m.PauseAt = trig
					m.Run()
				}
				replayTot += time.Since(t0)

				// Restore-from-snapshot: one golden pass chained through the
				// sorted triggers, one dirty-page restore per target.
				t0 = time.Now()
				m.Reboot()
				m.PauseAt = triggers[0]
				m.Run()
				chain := snapshot.Capture(m)
				for _, trig := range triggers[1:] {
					if _, err := chain.Restore(m); err != nil {
						b.Fatal(err)
					}
					if trig > chain.Cycles {
						m.PauseAt = trig
						m.Run()
						if _, err := chain.Recapture(m); err != nil {
							b.Fatal(err)
						}
					}
				}
				if _, err := chain.Restore(m); err != nil {
					b.Fatal(err)
				}
				snapTot += time.Since(t0)
				m.Mem.ClearBaseline()
			}
			b.StopTimer()

			speedup := float64(replayTot) / float64(snapTot)
			campSpeedup := float64(campReplay) / float64(campSnapshot)
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(float64(replayTot.Nanoseconds())/float64(b.N), "replay-ns/batch")
			b.ReportMetric(float64(snapTot.Nanoseconds())/float64(b.N), "snapshot-ns/batch")
			b.ReportMetric(campSpeedup, "campaign-speedup")
			b.Logf("\n%v code batch (%d injections, %d activated triggers):\n"+
				"  injection-point establishment: replay %v, snapshot %v, speedup %.1fx\n"+
				"  end-to-end campaign:           replay %v, snapshot %v, speedup %.2fx\n%s",
				p, n, len(triggers),
				replayTot/time.Duration(b.N), snapTot/time.Duration(b.N), speedup,
				campReplay, campSnapshot, campSpeedup, snapTable)
			rows[p.Short()] = row{
				ReplayNS:           replayTot.Nanoseconds() / int64(b.N),
				SnapshotNS:         snapTot.Nanoseconds() / int64(b.N),
				Speedup:            speedup,
				CampaignReplayNS:   campReplay.Nanoseconds(),
				CampaignSnapshotNS: campSnapshot.Nanoseconds(),
				CampaignSpeedup:    campSpeedup,
				Injections:         n,
				Triggers:           len(triggers),
			}
		})
	}
	if len(rows) == len(kfi.Platforms) {
		if buf, err := json.MarshalIndent(rows, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_snapshot.json", append(buf, '\n'), 0o644); err != nil {
				b.Logf("BENCH_snapshot.json: %v", err)
			}
		}
	}
}

// BenchmarkSnapshotRestoreVsReboot isolates the primitive the speedup rests
// on: rewinding a machine to a mid-run checkpoint by copying dirty pages
// versus re-executing the prefix from boot.
func BenchmarkSnapshotRestoreVsReboot(b *testing.B) {
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			m := sys.Sys.Machine
			const trigger = 500_000
			b.Run("replay-to-trigger", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Reboot()
					m.PauseAt = trigger
					m.Run()
				}
			})
			b.Run("restore-from-snapshot", func(b *testing.B) {
				m.Reboot()
				m.PauseAt = trigger
				m.Run()
				snap := snapshot.Capture(m)
				defer m.Mem.ClearBaseline()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.PauseAt = snap.Cycles + 20_000
					m.Run()
					if _, err := snap.Restore(m); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- Execution engines ----------------------------------------------------

// peakRig builds a bare core of platform p primed to run a register-dense
// compute loop of iters iterations ending in a halt — the translator's best
// case (every iteration is one fused register-run closure plus one branch),
// mirroring how dynamic-translation papers report peak vs. workload
// throughput. It returns the core (to hand to Descriptor.NewEngine), a reset
// that re-arms the loop without touching memory, and a state snapshot used
// to assert architectural equivalence across engines.
func peakRig(b *testing.B, p kfi.Platform, iters uint32) (core platform.Core, reset func(), state func() string) {
	b.Helper()
	const base = mem.PageSize
	desc, ok := platform.ByName(p.Short())
	if !ok {
		b.Fatalf("no descriptor for %v", p)
	}
	switch p {
	case kfi.P4:
		m := mem.New(1<<16, binary.LittleEndian)
		m.Map(base, mem.PageSize, mem.Present)
		a := cisc.NewAsm()
		a.MovRI(1, int32(iters))
		a.MovRI(2, 0x1234567)
		a.MovRI(3, 7)
		a.MovRI(4, 0)
		a.Label("loop")
		a.AddRR(2, 3)
		a.XorRR(4, 2)
		a.MovRR(5, 4)
		a.Lea(6, 5, 8)
		a.IncR(2)
		a.OrRR(3, 4)
		a.Movzx16(7, 4)
		a.AddRI(5, 13)
		a.NotR(6)
		a.ShlRI(4, 1)
		a.SubRI(1, 1)
		a.Jcc(cisc.CcNE, "loop")
		a.Hlt()
		code, err := a.Link(base, nil)
		if err != nil {
			b.Fatal(err)
		}
		copy(m.RawBytes(base, uint32(len(code))), code)
		core = desc.NewCore(m)
		cpu := cisc.CPUOf(core)
		reset = func() {
			cpu.Reset()
			cpu.Clk = isa.CycleCounter{}
			cpu.EIP = base
		}
		state = func() string {
			return fmt.Sprint(cpu.Regs, cpu.EIP, cpu.Flags, cpu.Clk.Cycles())
		}
		return core, reset, state
	case kfi.G4:
		m := mem.New(1<<16, binary.BigEndian)
		m.Map(base, mem.PageSize, mem.Present)
		a := risc.NewAsm()
		a.Li32(1, int32(iters))
		a.Li32(2, 0x1234567)
		a.Li(3, 7)
		a.Li(4, 0)
		a.Label("loop")
		a.Add(2, 2, 3)
		a.Xor(4, 4, 2)
		a.Mr(5, 4)
		a.Addi(6, 5, 8)
		a.Slwi(7, 4, 1)
		a.Or(3, 3, 4)
		a.Extsh(8, 4)
		a.Addi(5, 5, 13)
		a.Nor(6, 6, 6)
		a.Srawi(9, 2, 3)
		a.Addi(1, 1, -1)
		a.Cmpwi(1, 0)
		a.Bne("loop")
		a.Halt()
		code, err := a.Link(base, nil)
		if err != nil {
			b.Fatal(err)
		}
		copy(m.RawBytes(base, uint32(len(code))), code)
		core = desc.NewCore(m)
		cpu := risc.CPUOf(core)
		reset = func() {
			cpu.Reset()
			cpu.Clk = isa.CycleCounter{}
			cpu.PC = base
		}
		state = func() string {
			return fmt.Sprint(cpu.R, cpu.PC, cpu.CR, cpu.Clk.Cycles())
		}
		return core, reset, state
	}
	b.Fatalf("peakRig: unknown platform %v", p)
	return nil, nil, nil
}

// BenchmarkEngineSpeedup measures the three execution engines (step
// interpreter, predecoded interpreter, basic-block translator) on both
// platforms: raw throughput (instructions per second over the fault-free
// golden run) and end-to-end code-campaign time, per engine. Every engine's
// campaign outcome table must match byte-for-byte — engine choice is a pure
// execution-speed knob, observationally invisible even to injections that
// corrupt already-translated code. Results go to BENCH_exec.json.
func BenchmarkEngineSpeedup(b *testing.B) {
	type engRow struct {
		StepsPerSec     float64 `json:"steps_per_sec"`
		PeakStepsPerSec float64 `json:"peak_steps_per_sec"`
		CampaignNS      int64   `json:"campaign_ns"`
		Blocks          uint64  `json:"translated_blocks,omitempty"`
		Hits            uint64  `json:"closure_cache_hits,omitempty"`
		Invalidations   uint64  `json:"invalidations,omitempty"`
		Fallbacks       uint64  `json:"fallbacks,omitempty"`
	}
	type row struct {
		Steps                uint64            `json:"steps_per_run"`
		PeakSteps            uint64            `json:"peak_steps_per_run"`
		Engines              map[string]engRow `json:"engines"`
		TranslateSpeedup     float64           `json:"translate_vs_predecode_speedup"`
		PeakTranslateSpeedup float64           `json:"peak_translate_vs_predecode_speedup"`
		CampaignSpeedup      float64           `json:"campaign_translate_vs_predecode_speedup"`
		Injections           int               `json:"injections"`
		TablesIdentical      bool              `json:"tables_identical"`
	}
	engines := []kfi.EngineKind{kfi.EngineInterp, kfi.EnginePredecode, kfi.EngineTranslate}
	rows := map[string]row{}
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)
			m := sys.Sys.Machine
			defer m.SetEngine(0)

			// One traced run counts retired instructions — deterministic, so
			// it serves every engine.
			var steps uint64
			m.Core().SetTrace(func(pc uint32, cost uint8) { steps++ })
			if res := sys.Sys.Run(); res.Checksum != sys.Golden {
				b.Fatal("traced golden run diverged")
			}
			m.Core().SetTrace(nil)

			n := 150
			if testing.Short() {
				n = 40
			}
			seed := int64(1310) + int64(p)

			// End-to-end code campaigns on every engine; the outcome tables
			// are the correctness half of the claim.
			er := map[string]engRow{}
			campNS := map[kfi.EngineKind]int64{}
			var baseTable string
			identical := true
			for _, k := range engines {
				t0 := time.Now()
				oc, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil, kfi.ExecOptions{Engine: k})
				if err != nil {
					b.Fatal(err)
				}
				campNS[k] = time.Since(t0).Nanoseconds()
				table := oc.Counts.TableRow("code")
				if baseTable == "" {
					baseTable = table
				} else if table != baseTable {
					identical = false
					b.Errorf("outcome tables diverge between engines:\n  %s: %s\n  %s: %s",
						engines[0], baseTable, k, table)
				}
				er[k.String()] = engRow{
					CampaignNS:    campNS[k],
					Blocks:        oc.EngineStats.Translated,
					Hits:          oc.EngineStats.Hits,
					Invalidations: oc.EngineStats.Invalidations,
					Fallbacks:     oc.EngineStats.Fallbacks,
				}
			}

			// Raw throughput over complete fault-free runs, per engine.
			tot := map[kfi.EngineKind]time.Duration{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, k := range engines {
					if err := m.SetEngine(k); err != nil {
						b.Fatal(err)
					}
					t0 := time.Now()
					if res := sys.Sys.Run(); res.Checksum != sys.Golden {
						b.Fatalf("%v golden run diverged", k)
					}
					tot[k] += time.Since(t0)
				}
			}
			b.StopTimer()

			for _, k := range engines {
				e := er[k.String()]
				e.StepsPerSec = float64(steps) * float64(b.N) / tot[k].Seconds()
				er[k.String()] = e
				b.ReportMetric(e.StepsPerSec, "steps/sec-"+k.String())
			}
			execSpeedup := float64(tot[kfi.EnginePredecode]) / float64(tot[kfi.EngineTranslate])
			campSpeedup := float64(campNS[kfi.EnginePredecode]) / float64(campNS[kfi.EngineTranslate])
			b.ReportMetric(execSpeedup, "translate-speedup")
			b.ReportMetric(campSpeedup, "campaign-speedup")

			// Peak throughput: a register-dense compute loop on a bare core,
			// the translator's best case (the golden runs above are
			// memory-bound, so they understate the dispatch win). The final
			// architectural state and cycle count must agree across engines.
			iters := uint32(400_000)
			if testing.Short() {
				iters = 100_000
			}
			core, reset, state := peakRig(b, p, iters)
			desc, ok := platform.ByName(p.Short())
			if !ok {
				b.Fatalf("no descriptor for %v", p)
			}
			runToHalt := func(eng platform.ExecEngine) {
				for {
					ev := eng.RunUntil(^uint64(0))
					if ev.Kind == isa.EvHalt {
						return
					}
					if ev.Kind != isa.EvNone {
						b.Fatalf("peak loop: unexpected event %v at cause %v", ev.Kind, ev.Cause)
					}
				}
			}
			// One traced interpreter run counts the loop's retired steps.
			var peakSteps uint64
			eng, err := desc.NewEngine(kfi.EngineInterp, core)
			if err != nil {
				b.Fatal(err)
			}
			core.SetTrace(func(pc uint32, cost uint8) { peakSteps++ })
			reset()
			runToHalt(eng)
			core.SetTrace(nil)
			var peakState string
			peakNS := map[kfi.EngineKind]time.Duration{}
			for _, k := range engines {
				eng, err := desc.NewEngine(k, core)
				if err != nil {
					b.Fatal(err)
				}
				reset()
				t0 := time.Now()
				runToHalt(eng)
				peakNS[k] = time.Since(t0)
				if peakState == "" {
					peakState = state()
				} else if s := state(); s != peakState {
					identical = false
					b.Errorf("peak loop final state diverges on %v:\n  %s\nvs\n  %s", k, peakState, s)
				}
				e := er[k.String()]
				e.PeakStepsPerSec = float64(peakSteps) / peakNS[k].Seconds()
				er[k.String()] = e
			}
			peakSpeedup := float64(peakNS[kfi.EnginePredecode]) / float64(peakNS[kfi.EngineTranslate])
			b.ReportMetric(peakSpeedup, "peak-translate-speedup")
			b.Logf("\n%v engines (%d steps/run, %d peak steps, %d injections):\n"+
				"  interp:    %8.2fM steps/s, peak %8.2fM, campaign %v\n"+
				"  predecode: %8.2fM steps/s, peak %8.2fM, campaign %v\n"+
				"  translate: %8.2fM steps/s, peak %8.2fM, campaign %v   (vs predecode: exec %.2fx, peak %.2fx, campaign %.2fx)\n%s",
				p, steps, peakSteps, n,
				er["interp"].StepsPerSec/1e6, er["interp"].PeakStepsPerSec/1e6, time.Duration(campNS[kfi.EngineInterp]),
				er["predecode"].StepsPerSec/1e6, er["predecode"].PeakStepsPerSec/1e6, time.Duration(campNS[kfi.EnginePredecode]),
				er["translate"].StepsPerSec/1e6, er["translate"].PeakStepsPerSec/1e6, time.Duration(campNS[kfi.EngineTranslate]),
				execSpeedup, peakSpeedup, campSpeedup, baseTable)
			rows[p.Short()] = row{
				Steps:                steps,
				PeakSteps:            peakSteps,
				Engines:              er,
				TranslateSpeedup:     execSpeedup,
				PeakTranslateSpeedup: peakSpeedup,
				CampaignSpeedup:      campSpeedup,
				Injections:           n,
				TablesIdentical:      identical,
			}
		})
	}
	if len(rows) == len(kfi.Platforms) {
		if buf, err := json.MarshalIndent(rows, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_exec.json", append(buf, '\n'), 0o644); err != nil {
				b.Logf("BENCH_exec.json: %v", err)
			}
		}
	}
}

// --- Static error-sensitivity analysis ------------------------------------

// BenchmarkStaticSense measures the whole-target static analyzer's costs
// and payoffs on both platforms: the one-time whole-target sweep time (all
// four injection spaces — code, data, stack, sysreg), the fraction of each
// space it proves inert, the end-to-end code-campaign speedup from pruning
// predicted-inert sites, and the incremental-campaign speedup from a warm
// per-section outcome cache. The pruned and unpruned campaigns' outcome
// tables must match byte-for-byte, and the warm cached run must reproduce
// the cold run's table exactly. Results go to BENCH_sense.json.
func BenchmarkStaticSense(b *testing.B) {
	type targetRow struct {
		Sites    int     `json:"sites"`
		InertPct float64 `json:"inert_pct"`
	}
	type row struct {
		AnalysisNS       int64                `json:"analysis_ns"`
		Sites            int                  `json:"sites"`
		InertPct         float64              `json:"inert_pct"`
		Targets          map[string]targetRow `json:"targets"`
		CampaignFullNS   int64                `json:"campaign_full_ns"`
		CampaignPrunedNS int64                `json:"campaign_pruned_ns"`
		CampaignSpeedup  float64              `json:"campaign_speedup"`
		CacheColdNS      int64                `json:"cache_cold_ns"`
		CacheWarmNS      int64                `json:"cache_warm_ns"`
		CacheSpeedup     float64              `json:"cache_speedup"`
		Injections       int                  `json:"injections"`
		Skipped          int                  `json:"skipped"`
		TablesIdentical  bool                 `json:"tables_identical"`
	}
	rows := map[string]row{}
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			sys := benchSystem(b, p)

			// One-time whole-target analysis cost and the size of the proof
			// it produces across all four injection spaces.
			var rep *staticsense.Report
			var analysis time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				an, err := staticsense.NewAnalyzer(staticsense.Config{
					Image:              sys.Sys.KernelImage,
					Prog:               sys.Sys.Prog,
					Proc:               sys.Sys.Src.Proc,
					KStackSize:         sys.Sys.KStackSize,
					HostReadGlobals:    kernel.HostReadGlobals(),
					HostReadTaskFields: kernel.HostReadTaskFields(),
				})
				if err != nil {
					b.Fatal(err)
				}
				rep = an.Sweep()
				analysis += time.Since(t0)
			}
			b.StopTimer()
			analysisPer := analysis / time.Duration(b.N)
			targets := map[string]targetRow{}
			for _, tr := range rep.Targets {
				frac := 0.0
				if tr.Sites > 0 {
					frac = float64(tr.Inert) / float64(tr.Sites)
				}
				targets[tr.Target] = targetRow{Sites: tr.Sites, InertPct: 100 * frac}
			}

			n := 150
			if testing.Short() {
				n = 40
			}
			seed := int64(2904) + int64(p)

			// End-to-end code campaigns: annotated-but-unpruned versus
			// pruned. Table equality is the correctness half of the claim.
			t0 := time.Now()
			full, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil, kfi.ExecOptions{Sense: true})
			if err != nil {
				b.Fatal(err)
			}
			campFull := time.Since(t0)
			t0 = time.Now()
			pruned, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil, kfi.ExecOptions{Prune: true})
			if err != nil {
				b.Fatal(err)
			}
			campPruned := time.Since(t0)
			fullTable, prunedTable := full.Counts.TableRow("code"), pruned.Counts.TableRow("code")
			if fullTable != prunedTable {
				b.Fatalf("outcome tables diverge between full and pruned campaigns:\n  full:   %s\n  pruned: %s",
					fullTable, prunedTable)
			}
			skipped := 0
			for _, r := range pruned.Results {
				if r.PredSkipped {
					skipped++
				}
			}

			// Incremental campaign: a cold section-cached run fills the
			// per-section cache, a warm re-run replays every row from it.
			cacheDir := b.TempDir()
			t0 = time.Now()
			cold, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil,
				kfi.ExecOptions{Sense: true, SectionCache: cacheDir})
			if err != nil {
				b.Fatal(err)
			}
			cacheCold := time.Since(t0)
			t0 = time.Now()
			warm, err := kfi.RunCampaignWith(sys, kfi.Code, n, seed, nil,
				kfi.ExecOptions{Sense: true, SectionCache: cacheDir})
			if err != nil {
				b.Fatal(err)
			}
			cacheWarm := time.Since(t0)
			if ct, wt := cold.Counts.TableRow("code"), warm.Counts.TableRow("code"); ct != wt {
				b.Fatalf("outcome tables diverge between cold and warm cached campaigns:\n  cold: %s\n  warm: %s", ct, wt)
			}

			campSpeedup := float64(campFull) / float64(campPruned)
			cacheSpeedup := float64(cacheCold) / float64(cacheWarm)
			b.ReportMetric(float64(analysisPer.Nanoseconds()), "analysis-ns")
			b.ReportMetric(100*rep.InertFrac(), "inert-%")
			b.ReportMetric(campSpeedup, "campaign-speedup")
			b.ReportMetric(cacheSpeedup, "cache-speedup")
			b.Logf("\n%v static sense (%d sites over %d target classes, %d injections):\n"+
				"  analysis:  %v for the whole target, %.1f%% of flips proven inert\n"+
				"  campaign:  full %v, pruned %v (%d skipped), speedup %.2fx\n"+
				"  cache:     cold %v, warm %v, speedup %.2fx\n%s",
				p, rep.Sites, len(rep.Targets), n, analysisPer, 100*rep.InertFrac(),
				campFull, campPruned, skipped, campSpeedup,
				cacheCold, cacheWarm, cacheSpeedup, prunedTable)
			rows[p.Short()] = row{
				AnalysisNS:       analysisPer.Nanoseconds(),
				Sites:            rep.Sites,
				InertPct:         100 * rep.InertFrac(),
				Targets:          targets,
				CampaignFullNS:   campFull.Nanoseconds(),
				CampaignPrunedNS: campPruned.Nanoseconds(),
				CampaignSpeedup:  campSpeedup,
				CacheColdNS:      cacheCold.Nanoseconds(),
				CacheWarmNS:      cacheWarm.Nanoseconds(),
				CacheSpeedup:     cacheSpeedup,
				Injections:       n,
				Skipped:          skipped,
				TablesIdentical:  true,
			}
		})
	}
	if len(rows) == len(kfi.Platforms) {
		if buf, err := json.MarshalIndent(rows, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_sense.json", append(buf, '\n'), 0o644); err != nil {
				b.Logf("BENCH_sense.json: %v", err)
			}
		}
	}
}

// --- Software-implemented fault detection (hardening) ---------------------

// BenchmarkHarden runs the matched hardened-vs-unhardened study end to end on
// both platforms: the same injection plan against a plain build and a build
// carrying the kir.Harden duplication + control-flow-signature passes. It
// reports the detection coverage the hardened kernel achieves over errors
// that manifest, and the two overheads the detection costs — static (kernel
// code bytes) and dynamic (fault-free golden-run cycles). Single-bit and
// adjacent double-bit code campaigns both run; the unhardened side must
// record zero detections. Results go to BENCH_harden.json.
func BenchmarkHarden(b *testing.B) {
	type row struct {
		Opts           string  `json:"opts"`
		CodeOverhead   float64 `json:"code_overhead"`
		CycleOverhead  float64 `json:"cycle_overhead"`
		Injected       int     `json:"injected_per_build"`
		Detected       int     `json:"detected"`
		CoveragePct    float64 `json:"coverage_pct"`
		Burst2Detected int     `json:"burst2_detected"`
	}
	rows := map[string]row{}
	opts := kfi.HardenOptions{Dup: true, CFSig: true}
	for _, p := range kfi.Platforms {
		p := p
		b.Run(p.Short(), func(b *testing.B) {
			n := 120
			if testing.Short() {
				n = 40
			}
			seed := int64(8800) + int64(p)
			specs := []kfi.HardenSpec{
				{Campaign: kfi.Code, N: n, Seed: seed},
				{Campaign: kfi.Code, N: n, Seed: seed, Burst: 2},
				{Campaign: kfi.Stack, N: n / 2, Seed: seed + 1},
				{Campaign: kfi.Data, N: n / 2, Seed: seed + 2},
			}
			var study *kfi.HardenStudy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				study, err = kfi.RunHardenStudy(p, 1, opts, specs, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()

			var plain, hard, burst2 []kfi.Result
			for _, r := range study.Rows {
				plain = append(plain, r.Plain...)
				hard = append(hard, r.Hard...)
				if r.Spec.Burst == 2 {
					burst2 = append(burst2, r.Hard...)
				}
			}
			pc, hc := kfi.Summarize(plain), kfi.Summarize(hard)
			if pc.Detected != 0 {
				b.Fatalf("unhardened build recorded %d detections", pc.Detected)
			}
			b.ReportMetric(hc.DetectionCoverage(), "coverage-%")
			b.ReportMetric(study.CodeOverhead(), "code-x")
			b.ReportMetric(study.CycleOverhead(), "cycles-x")
			b.Logf("\n%v hardened (%v) vs unhardened, %d injections per build:\n%s\n%s\n%s\n"+
				"  overhead: code x%.2f (%d -> %d bytes), fault-free run x%.2f (%d -> %d cycles)",
				p, opts, len(hard),
				stats.CoverageHeader(),
				hc.CoverageRow("hardened"),
				pc.CoverageRow("unhardened"),
				study.CodeOverhead(), study.CodeBytes, study.HardCodeBytes,
				study.CycleOverhead(), study.GoldenCycles, study.HardGoldenCycles)
			rows[p.Short()] = row{
				Opts:           opts.String(),
				CodeOverhead:   study.CodeOverhead(),
				CycleOverhead:  study.CycleOverhead(),
				Injected:       len(hard),
				Detected:       hc.Detected,
				CoveragePct:    hc.DetectionCoverage(),
				Burst2Detected: kfi.Summarize(burst2).Detected,
			}
		})
	}
	if len(rows) == len(kfi.Platforms) {
		if buf, err := json.MarshalIndent(rows, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_harden.json", append(buf, '\n'), 0o644); err != nil {
				b.Logf("BENCH_harden.json: %v", err)
			}
		}
	}
}
