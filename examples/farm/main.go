// Farm demonstrates the paper's multi-machine setup ("to speed up the
// experiments, three P4 and two G4 machines are used in the injection
// campaigns"): a campaign is distributed over several identical guest
// systems and produces exactly the same results as a single machine, in a
// fraction of the wall-clock time on multi-core hosts.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"kfi/internal/campaign"
	"kfi/internal/inject"
	"kfi/internal/isa"
	"kfi/internal/kernel"
	"kfi/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 3, "number of guest machines in the farm")
	n := flag.Int("n", 60, "injections")
	flag.Parse()
	if err := run(*nodes, *n); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, n int) error {
	spec := campaign.Spec{Campaign: inject.CampCode, N: n, Seed: 404}

	fmt.Printf("building a farm of %d P4-class machines...\n", nodes)
	farm, err := campaign.NewFarm(isa.CISC, nodes, 1, kernel.Options{})
	if err != nil {
		return err
	}
	start := time.Now()
	farmRes, err := farm.Run(spec, nil)
	if err != nil {
		return err
	}
	farmTime := time.Since(start)

	fmt.Println("running the same campaign on a single machine...")
	solo, err := campaign.NewFarm(isa.CISC, 1, 1, kernel.Options{})
	if err != nil {
		return err
	}
	start = time.Now()
	soloRes, err := solo.Run(spec, nil)
	if err != nil {
		return err
	}
	soloTime := time.Since(start)

	// Same targets + deterministic machines → identical outcome sequences.
	same := len(farmRes.Results) == len(soloRes.Results)
	if same {
		for i := range farmRes.Results {
			if farmRes.Results[i].Outcome != soloRes.Results[i].Outcome {
				same = false
				break
			}
		}
	}
	fmt.Printf("\n%d injections: farm %v, single machine %v (results identical: %v)\n",
		n, farmTime.Round(time.Millisecond), soloTime.Round(time.Millisecond), same)
	c := stats.Summarize(farmRes.Results)
	fmt.Println(stats.TableHeader())
	fmt.Println(c.TableRow("Code"))
	return nil
}
