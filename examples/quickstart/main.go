// Quickstart: build the P4-class guest system, run the benchmark once
// fault-free, then inject a single bit flip into the hottest kernel function
// and watch what the paper's methodology reports.
package main

import (
	"fmt"
	"log"

	"kfi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Building the P4-class system (kernel + UnixBench-style workload)...")
	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("Fault-free run completed: checksum 0x%08x\n", sys.Golden)
	fmt.Printf("Hottest kernel functions under the benchmark:\n")
	for i, f := range sys.Profile.Hot(0.95) {
		fmt.Printf("  %2d. %-20s %d cycles\n", i+1, f.Name, f.Cycles)
		if i == 7 {
			break
		}
	}

	fmt.Println("\nInjecting 10 single-bit errors into kernel code...")
	targets, err := kfi.NewTargets(sys, kfi.Code, 10, 42)
	if err != nil {
		return err
	}
	for i, t := range targets {
		res := kfi.InjectOne(sys, t)
		detail := ""
		if res.Outcome == kfi.Crash {
			where := res.CrashFunc
			if where == "" {
				where = "<wild address>" // crash PC outside any kernel function
			}
			detail = fmt.Sprintf(" — %v in %s after %d cycles", res.Cause, where, res.Latency)
		}
		fmt.Printf("  #%d %s+0x%x bit %d: %v%s\n",
			i+1, t.Func, t.Addr, t.Bit, res.Outcome, detail)
	}

	fmt.Println("\nSummary:")
	var results []kfi.Result
	for _, t := range targets {
		results = append(results, kfi.InjectOne(sys, t))
	}
	c := kfi.Summarize(results)
	fmt.Printf("  injected=%d activated=%d not-manifested=%d fsv=%d crash=%d hang/unknown=%d\n",
		c.Injected, c.Activated, c.NotManifested, c.FailSilence, c.Crash, c.HangUnknown)
	return nil
}
