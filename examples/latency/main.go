// Latency explores the paper's cycles-to-crash analysis (§6, Figure 16):
// it runs code-injection campaigns on both platforms, prints the latency
// histograms side by side, and demonstrates the two opposing mechanisms —
//
//   - P4: a flipped instruction usually re-synchronizes into a valid-but-
//     wrong instruction group that fails fast ("poor diagnosability seems to
//     lead to shorter error latencies in the code section");
//   - G4: corrupted register values can stay dormant in the large register
//     file and crash much later.
//
// It also prints the paper-style crash dumps for the slowest and fastest
// crash observed on each platform.
package main

import (
	"flag"
	"fmt"
	"log"

	"kfi"
)

func main() {
	n := flag.Int("n", 150, "injections per platform")
	flag.Parse()
	if err := run(*n); err != nil {
		log.Fatal(err)
	}
}

func run(n int) error {
	type record struct {
		hist    kfi.LatencyHist
		slowest kfi.Result
		fastest kfi.Result
	}
	recs := make(map[kfi.Platform]*record)

	for _, p := range kfi.Platforms {
		sys, err := kfi.BuildSystem(p, kfi.BuildOptions{})
		if err != nil {
			return err
		}
		targets, err := kfi.NewTargets(sys, kfi.Code, n, 99)
		if err != nil {
			return err
		}
		rec := &record{}
		var results []kfi.Result
		for _, t := range targets {
			res := kfi.InjectOne(sys, t)
			results = append(results, res)
			if res.Outcome != kfi.Crash {
				continue
			}
			if rec.slowest.Outcome != kfi.Crash || res.Latency > rec.slowest.Latency {
				rec.slowest = res
			}
			if rec.fastest.Outcome != kfi.Crash || res.Latency < rec.fastest.Latency {
				rec.fastest = res
			}
		}
		rec.hist = kfi.Latencies(results)
		recs[p] = rec
	}

	fmt.Printf("Cycles-to-Crash, Code Injection (%d injections per platform)\n", n)
	fmt.Printf("  %-9s %10s %10s\n", "bucket", "P4-class", "G4-class")
	labels := []string{"<3k", "3k-10k", "10k-100k", "100k-1M", "1M-10M", "10M-100M", "100M-1G", ">1G"}
	p4h, g4h := recs[kfi.P4].hist, recs[kfi.G4].hist
	for i, label := range labels {
		fmt.Printf("  %-9s %9.1f%% %9.1f%%\n", label, p4h.Pct(i), g4h.Pct(i))
	}
	fmt.Printf("  %-9s %10d %10d\n\n", "crashes", p4h.Total, g4h.Total)

	for _, p := range kfi.Platforms {
		rec := recs[p]
		if rec.fastest.Outcome != kfi.Crash {
			continue
		}
		fmt.Printf("%v fastest crash (%d cycles): %v in %s — bit %d of %s\n",
			p, rec.fastest.Latency, rec.fastest.Cause, rec.fastest.CrashFunc,
			rec.fastest.Target.Bit, rec.fastest.Target.Func)
		fmt.Printf("%v slowest crash (%d cycles): %v in %s — bit %d of %s\n\n",
			p, rec.slowest.Latency, rec.slowest.Cause, rec.slowest.CrashFunc,
			rec.slowest.Target.Bit, rec.slowest.Target.Func)
	}

	fmt.Println("Interpretation: the P4's immediate crashes sit below 3k cycles (its")
	fmt.Println("exception stages cost ~1.4k), while the G4's heavier exception path and")
	fmt.Println("register-resident values push its distribution upward — the paper's")
	fmt.Println("ordering for Figure 16(C).")
	return nil
}
