// Forensics walks the analysis pipeline the paper applies to individual
// failures (§5.1, Figure 7): run a small code-injection campaign, quantify
// how far crashes traveled from the corrupted function, then zoom into one
// crash with a golden-vs-faulty trace diff that pinpoints the exact retired
// instruction where the corrupted kernel left the golden path.
package main

import (
	"fmt"
	"log"

	"kfi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
	if err != nil {
		return err
	}

	// A small code campaign to collect crashes.
	fmt.Println("running 80 code injections on the P4-class kernel...")
	targets, err := kfi.NewTargets(sys, kfi.Code, 80, 2026)
	if err != nil {
		return err
	}
	var results []kfi.Result
	for _, t := range targets {
		results = append(results, kfi.InjectOne(sys, t))
	}

	// How far did the errors travel before detection?
	prop := kfi.Propagate(results)
	fmt.Println()
	fmt.Print(prop.Render())

	// Pick the crash that escaped farthest (cross-subsystem if available)
	// and reconstruct its propagation at instruction granularity.
	var pick *kfi.Result
	for i := range results {
		r := &results[i]
		if r.Outcome != kfi.Crash {
			continue
		}
		if pick == nil || (r.CrashFunc != r.Target.Func && pick.CrashFunc == pick.Target.Func) {
			pick = r
		}
	}
	if pick == nil {
		fmt.Println("no crashes in this campaign; rerun with another seed")
		return nil
	}

	fmt.Printf("\nzooming into one crash: flip in %s, detected in %s (%v)\n\n",
		pick.Target.Func, pick.CrashFunc, pick.Cause)
	d, err := kfi.TraceDiff(sys, pick.Target, 6)
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	return nil
}
