// Stackprop demonstrates the paper's central architectural contrast with the
// case studies of Figures 7, 9, and 13:
//
//   - On the P4-class machine a corrupted stack/frame pointer is NOT detected
//     where it happens: the kernel keeps running and crashes later, often in
//     a different subsystem (Figure 7's mm → net propagation).
//   - On the G4-class machine the kernel's exception-entry wrapper validates
//     the stack pointer against the 8 KiB kernel stack and raises an explicit
//     Stack Overflow, detecting the same corruption quickly.
//   - A data error in a spinlock's SPINLOCK_DEBUG magic word is caught by
//     BUG() and — misleadingly — reported as an Invalid Instruction
//     (Figure 13).
package main

import (
	"fmt"
	"log"

	"kfi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== P4: undetected stack corruption propagates (Figure 7) ==")
	if err := p4Propagation(); err != nil {
		return err
	}
	fmt.Println("\n== G4: the stack-overflow wrapper detects the same class of error (§5.1) ==")
	if err := g4StackOverflow(); err != nil {
		return err
	}
	fmt.Println("\n== P4: spinlock magic corruption is misreported as Invalid Instruction (Figure 13) ==")
	return p4SpinlockMagic()
}

// p4Propagation sweeps bit flips over free_pages_ok's epilogue until one
// crashes outside the faulted function.
func p4Propagation() error {
	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	im := sys.Sys.KernelImage
	fr, ok := im.FuncAt(im.Sym("free_pages_ok"))
	if !ok {
		return fmt.Errorf("free_pages_ok not found")
	}
	for addr := fr.End - 24; addr < fr.End; addr++ {
		for bit := uint(0); bit < 8; bit++ {
			res := kfi.InjectOne(sys, kfi.Target{
				Campaign: kfi.Code,
				Addr:     fr.Start,
				ByteOff:  uint8(addr - fr.Start),
				Bit:      bit,
				Func:     "free_pages_ok",
			})
			if res.Outcome == kfi.Crash && res.CrashFunc != "free_pages_ok" && res.CrashFunc != "" {
				fmt.Printf("  flipped bit %d of free_pages_ok+0x%x\n", bit, addr-fr.Start)
				fmt.Printf("  → system kept running and crashed in %q (%v)\n", res.CrashFunc, res.Cause)
				fmt.Printf("  → crash latency: %d cycles (undetected propagation)\n", res.Latency)
				return nil
			}
		}
	}
	fmt.Println("  (no propagating flip found in this sweep)")
	return nil
}

// g4StackOverflow runs stack injections on the G4 until the wrapper reports
// an explicit Stack Overflow.
func g4StackOverflow() error {
	sys, err := kfi.BuildSystem(kfi.G4, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	targets, err := kfi.NewTargets(sys, kfi.Stack, 400, 12345)
	if err != nil {
		return err
	}
	for _, t := range targets {
		res := kfi.InjectOne(sys, t)
		if res.Outcome == kfi.Crash && res.Cause.String() == "Stack Overflow" {
			fmt.Printf("  stack flip in process slot %d (resolved to 0x%08x, bit %d)\n",
				t.ProcSlot, res.Target.Addr, t.Bit)
			fmt.Printf("  → the exception-entry wrapper found the stack pointer out of its 8 KiB range\n")
			fmt.Printf("  → explicit Stack Overflow after %d cycles (fast detection)\n", res.Latency)
			return nil
		}
	}
	fmt.Println("  (no stack-overflow in this sweep; rerun with another seed)")
	return nil
}

// p4SpinlockMagic corrupts the big kernel lock's magic word.
func p4SpinlockMagic() error {
	sys, err := kfi.BuildSystem(kfi.P4, kfi.BuildOptions{})
	if err != nil {
		return err
	}
	magic := sys.Sys.KernelImage.Sym("kernel_flag")
	res := kfi.InjectOne(sys, kfi.Target{Campaign: kfi.Data, Addr: magic + 1, Bit: 6})
	fmt.Printf("  flipped one bit of kernel_flag's SPINLOCK_DEBUG magic (data section)\n")
	fmt.Printf("  → outcome: %v, cause: %v, in %s\n", res.Outcome, res.Cause, res.CrashFunc)
	fmt.Printf("  → quick detection, but the reported exception type misleads diagnosis:\n")
	fmt.Printf("    the original fault was a DATA error, not an instruction error.\n")
	return nil
}
