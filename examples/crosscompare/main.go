// Crosscompare runs a scaled-down version of the paper's full study — all
// four injection campaigns on both platforms — and prints the Table 5/6
// statistics, the overall crash-cause distributions (Figures 4/5), and the
// cycles-to-crash histograms (Figure 16), followed by a check of the paper's
// headline claims against the measured data.
//
// Run with -n to choose the per-campaign injection count (default 120;
// larger values sharpen the distributions).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kfi"
)

func main() {
	n := flag.Int("n", 120, "injections per campaign")
	seed := flag.Int64("seed", 7, "target-generation seed")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n int, seed int64) error {
	counts := map[kfi.Campaign]int{}
	for _, c := range kfi.AllCampaigns {
		counts[c] = n
	}
	study, err := kfi.RunStudy(kfi.StudyConfig{
		Counts: counts,
		Seed:   seed,
		Progress: func(p kfi.Platform, c kfi.Campaign, done, total int) {
			if done == total {
				fmt.Fprintf(os.Stderr, "%s/%s: %d injections done\n", p.Short(), c, total)
			}
		},
	})
	if err != nil {
		return err
	}

	for _, p := range kfi.Platforms {
		fmt.Println(study.Table(p))
		fmt.Println(study.CauseFigure(p, 0))
	}
	for _, c := range kfi.AllCampaigns {
		fmt.Println(study.LatencyFigure(c))
	}

	fmt.Println("Headline claims (paper vs. this run):")
	checkClaims(study)
	return nil
}

// checkClaims evaluates the paper's major findings against the measured run.
func checkClaims(study *kfi.StudyResult) {
	manifested := func(p kfi.Platform, c kfi.Campaign) float64 {
		oc := study.PerPlatform[p].Outcomes[c]
		if oc == nil || oc.Counts.ActivatedBase() == 0 {
			return 0
		}
		return 100 * float64(oc.Counts.Manifested()) / float64(oc.Counts.ActivatedBase())
	}
	claim := func(ok bool, text string) {
		mark := "PASS"
		if !ok {
			mark = "MISS"
		}
		fmt.Printf("  [%s] %s\n", mark, text)
	}

	sp4, sg4 := manifested(kfi.P4, kfi.Stack), manifested(kfi.G4, kfi.Stack)
	claim(sp4 > sg4, fmt.Sprintf(
		"stack errors manifest far more on the P4 (paper 56%% vs 21%%; this run %.0f%% vs %.0f%%)", sp4, sg4))

	rp4, rg4 := manifested(kfi.P4, kfi.SysRegs), manifested(kfi.G4, kfi.SysRegs)
	claim(rp4 > rg4, fmt.Sprintf(
		"register errors manifest more on the P4 (paper >11%% vs 5%%; this run %.0f%% vs %.0f%%)", rp4, rg4))

	p4Causes := study.OverallCauses(kfi.P4)
	g4Causes := study.OverallCauses(kfi.G4)
	p4Mem := p4Causes.InvalidMemoryPct(kfi.P4)
	g4Mem := g4Causes.InvalidMemoryPct(kfi.G4)
	claim(p4Mem > 50 && g4Mem > 40, fmt.Sprintf(
		"invalid memory access dominates crashes on both (paper 71%%/67%%; this run %.0f%%/%.0f%%)", p4Mem, g4Mem))

	// G4 detects stack overflow explicitly; the P4 cannot.
	g4Stack := study.PerPlatform[kfi.G4].Outcomes[kfi.Stack]
	p4Stack := study.PerPlatform[kfi.P4].Outcomes[kfi.Stack]
	g4SO, p4SO := 0, 0
	for cause, n := range g4Stack.Causes.Counts {
		if cause.String() == "Stack Overflow" {
			g4SO += n
		}
	}
	for cause, n := range p4Stack.Causes.Counts {
		if cause.String() == "Stack Overflow" {
			p4SO += n
		}
	}
	claim(p4SO == 0, "the P4 never reports an explicit Stack Overflow (paper §5.1)")
	claim(g4SO > 0 || g4Stack.Causes.Total == 0,
		"the G4 wrapper reports explicit Stack Overflow crashes (paper: 41.9% of stack crashes)")

	// Latency orderings (Figure 16): G4 code crashes are slower than P4's.
	p4Lat := study.PerPlatform[kfi.P4].Outcomes[kfi.Code].Latency
	g4Lat := study.PerPlatform[kfi.G4].Outcomes[kfi.Code].Latency
	claim(p4Lat.CumulativePct(1) > g4Lat.CumulativePct(0), fmt.Sprintf(
		"P4 code errors fail faster (paper: 70%% <10k cycles vs G4 ~90%% >10k; this run %.0f%% vs %.0f%% <3k)",
		p4Lat.Pct(0), g4Lat.Pct(0)))
}
